"""Golden-trace regression and backend-invariance tests.

A fixed-seed DBTF run must produce exactly the span structure recorded in
``tests/goldens/dbtf_serial_trace.json`` (durations excluded — they are
host wall-clock).  Any intentional change to stage layout, kernel
instrumentation, or transfer attribution is made visible here and
re-recorded with ``pytest --update-goldens``.  On mismatch the actual
structure is written next to the golden (``*.actual.json``) so CI can
upload it as an artifact.

The same structural snapshot must be bit-identical across the serial,
thread, and process backends — the central contract of the observability
layer (ISSUE: trace structure invariance).
"""

import json
import os

import numpy as np
import pytest

from repro.core import dbtf
from repro.distengine import ClusterConfig, SimulatedRuntime
from repro.observability import structural_tree
from repro.tensor import planted_tensor

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "goldens")
GOLDEN_PATH = os.path.join(GOLDEN_DIR, "dbtf_serial_trace.json")

#: Counters whose merged totals must match across backends.  Time-valued
#: metrics (histograms, gauges) are excluded by construction.
INVARIANT_COUNTERS = (
    "stages_total",
    "tasks_total",
    "task_failures_total",
    "transfer_bytes_total",
    "cache_tables_built_total",
    "cache_entries_total",
    "cache_fetches_total",
    "bitmatrix_ops_total",
    "kernel_dispatch_total",
)


def _traced_run(backend: str) -> SimulatedRuntime:
    """Fixed-seed DBTF on a small planted tensor with tracing on."""
    tensor, _ = planted_tensor(
        (10, 10, 10), rank=2, factor_density=0.3,
        rng=np.random.default_rng(7),
    )
    runtime = SimulatedRuntime(
        ClusterConfig(n_machines=2, cores_per_machine=2, backend=backend,
                      tracing=True)
    )
    try:
        dbtf(tensor, rank=2, max_iterations=2, n_partitions=3, seed=0,
             runtime=runtime)
    finally:
        runtime.close()
    return runtime


def _structure_json(runtime: SimulatedRuntime) -> str:
    return json.dumps(structural_tree(runtime.tracer), indent=1,
                      sort_keys=True)


def _invariant_counters(runtime: SimulatedRuntime) -> dict:
    return {
        name: values
        for name, values in runtime.metrics.counters().items()
        if name in INVARIANT_COUNTERS
    }


class TestGoldenTrace:
    def test_serial_trace_matches_golden(self, update_goldens):
        actual = _structure_json(_traced_run("serial")) + "\n"
        if update_goldens:
            os.makedirs(GOLDEN_DIR, exist_ok=True)
            with open(GOLDEN_PATH, "w", encoding="utf-8") as handle:
                handle.write(actual)
            pytest.skip("golden updated")
        assert os.path.exists(GOLDEN_PATH), (
            f"golden fixture missing; record it with "
            f"pytest {os.path.basename(__file__)} --update-goldens"
        )
        with open(GOLDEN_PATH, encoding="utf-8") as handle:
            expected = handle.read()
        if actual != expected:
            actual_path = GOLDEN_PATH.replace(".json", ".actual.json")
            with open(actual_path, "w", encoding="utf-8") as handle:
                handle.write(actual)
            raise AssertionError(
                f"trace structure drifted from the golden fixture; "
                f"actual written to {actual_path} — if the change is "
                f"intentional, re-record with --update-goldens"
            )


class TestBackendInvariance:
    @pytest.fixture(scope="class")
    def serial_run(self):
        return _traced_run("serial")

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_trace_structure_identical(self, serial_run, backend):
        other = _traced_run(backend)
        assert _structure_json(other) == _structure_json(serial_run)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_counters_identical(self, serial_run, backend):
        other = _traced_run(backend)
        assert _invariant_counters(other) == _invariant_counters(serial_run)

    def test_span_kinds_present(self, serial_run):
        kinds = {span.kind for span in serial_run.tracer.spans}
        assert kinds == {"stage", "task", "kernel", "transfer"}
