"""Unit tests for update-kernel internals (CachedPartition, mask helpers)."""

import numpy as np
import pytest

from repro.bitops import BitMatrix, packing
from repro.core import DbtfConfig, RowSummationCache
from repro.core.partition import build_partition_data, make_partition_plans
from repro.core.update import CachedPartition, _masks_with_bit_cleared
from repro.tensor import PackedUnfolding, SparseBoolTensor, random_factors, unfold


class TestMasksWithBitCleared:
    def test_clears_only_target_bit(self):
        rng = np.random.default_rng(0)
        matrix = BitMatrix.random(6, 10, 0.5, rng)
        for column in (0, 5, 9):
            masks = _masks_with_bit_cleared(matrix.words, column)
            cleared = BitMatrix(6, 10, masks)
            for row in range(6):
                for col in range(10):
                    expected = 0 if col == column else matrix.get(row, col)
                    assert cleared.get(row, col) == expected

    def test_bit_beyond_word_boundary(self):
        rng = np.random.default_rng(1)
        matrix = BitMatrix.random(3, 70, 0.5, rng)
        masks = _masks_with_bit_cleared(matrix.words, 66)
        cleared = BitMatrix(3, 70, masks)
        assert all(cleared.get(row, 66) == 0 for row in range(3))

    def test_original_untouched(self):
        rng = np.random.default_rng(2)
        matrix = BitMatrix.random(4, 8, 0.9, rng)
        before = matrix.words.copy()
        _masks_with_bit_cleared(matrix.words, 3)
        np.testing.assert_array_equal(matrix.words, before)


class TestCachedPartition:
    def _build(self, shape, rank, n_partitions, seed):
        rng = np.random.default_rng(seed)
        factors = random_factors(shape, rank, 0.5, rng)
        from repro.tensor import tensor_from_factors

        tensor = tensor_from_factors(factors)
        packed = PackedUnfolding(unfold(tensor, 0))
        plans = make_partition_plans(packed.block_count, packed.block_width, n_partitions)
        parts = build_partition_data(packed, plans)
        cache = RowSummationCache(factors[1], group_size=15)
        return tensor, factors, [CachedPartition(part, cache) for part in parts]

    def test_full_and_edge_blocks_partition_the_plan(self):
        _, _, cached = self._build((6, 7, 9), 3, 4, seed=0)
        for cp in cached:
            assert cp.full_pvms.size + len(cp.edge_blocks) == len(cp.data.plan.blocks)
            # Lemma 3: at most two partial blocks per partition.
            assert len(cp.edge_blocks) <= 2

    def test_column_errors_sum_to_whole_row_error(self):
        tensor, factors, cached = self._build((6, 7, 9), 3, 4, seed=1)
        a_matrix, b_matrix, c_matrix = factors
        column = 1
        masks = _masks_with_bit_cleared(a_matrix.words, column)
        inner_columns = b_matrix.transpose().words
        total_zero = np.zeros(6, dtype=np.int64)
        total_one = np.zeros(6, dtype=np.int64)
        for cp in cached:
            err_zero, err_one = cp.column_errors(
                masks, c_matrix.words, c_matrix.column(column),
                inner_columns[column],
            )
            total_zero += err_zero
            total_one += err_one
        # Brute-force reference over the dense unfolding.
        from repro.bitops import khatri_rao

        kr = khatri_rao(c_matrix, b_matrix).to_dense()  # (K*J, R)
        unfolded = unfold(tensor, 0).to_dense()
        for value, totals in ((0, total_zero), (1, total_one)):
            candidate = a_matrix.copy()
            for row in range(6):
                candidate.set(row, column, value)
            rows = candidate.to_dense().astype(bool)
            reconstruction = (rows.astype(np.int32) @ kr.T.astype(np.int32)) > 0
            expected = (reconstruction ^ unfolded.astype(bool)).sum(axis=1)
            np.testing.assert_array_equal(totals, expected)

    def test_empty_partition_contributes_zero(self):
        # More partitions than columns leaves some partitions block-less.
        tensor, factors, cached = self._build((3, 2, 2), 2, 10, seed=2)
        a_matrix, b_matrix, c_matrix = factors
        masks = _masks_with_bit_cleared(a_matrix.words, 0)
        inner_columns = b_matrix.transpose().words
        empty = [cp for cp in cached if not cp.data.plan.blocks]
        assert empty
        for cp in empty:
            err_zero, err_one = cp.column_errors(
                masks, c_matrix.words, c_matrix.column(0), inner_columns[0]
            )
            assert err_zero.sum() == 0
            assert err_one.sum() == 0
