"""FactorizationSession: epoch streams, warm starts, checkpoints, pruning."""

import numpy as np
import pytest

from repro import DbtfConfig, FactorizationSession, dbtf
from repro.distengine import ClusterConfig, SimulatedRuntime
from repro.resilience import CheckpointConfig
from repro.tensor import SparseBoolTensor, TensorDelta, planted_tensor

SHAPE = (10, 9, 8)


def _config(backend="serial", **overrides):
    options = dict(
        rank=3,
        seed=0,
        max_iterations=6,
        n_partitions=2,
        cluster=ClusterConfig(
            n_machines=2, cores_per_machine=2, backend=backend
        ),
    )
    options.update(overrides)
    return DbtfConfig(**options)


def _tensor(seed=0, shape=SHAPE, density=0.2):
    rng = np.random.default_rng(seed)
    return SparseBoolTensor.from_dense(
        (rng.random(shape) < density).astype(np.uint8)
    )


def _delta_stream(tensor, n_epochs, seed=1, n_changes=4):
    """Random deltas, each valid against the previous epoch's tensor."""
    rng = np.random.default_rng(seed)
    deltas = []
    current = tensor
    for _ in range(n_epochs):
        coords = current.coords
        n_removes = min(n_changes // 2, len(coords))
        removed = coords[
            rng.choice(len(coords), size=n_removes, replace=False)
        ]
        present = {tuple(int(x) for x in cell) for cell in coords}
        added = []
        while len(added) < n_changes - n_removes:
            cell = tuple(
                int(rng.integers(0, dim)) for dim in current.shape
            )
            if cell not in present:
                present.add(cell)
                added.append(cell)
        delta = TensorDelta.from_coords(
            current.shape, np.array(added, dtype=np.int64), removed
        )
        deltas.append(delta)
        current = current.apply_delta(delta)
    return deltas


def _words(result):
    return tuple(factor.words.tobytes() for factor in result.factors)


class TestEpochStream:
    def test_epoch_zero_matches_batch_dbtf(self):
        tensor = _tensor()
        config = _config()
        with FactorizationSession(tensor, config) as session:
            first = session.factorize()
        runtime = SimulatedRuntime(config.resolved_cluster())
        try:
            batch = dbtf(tensor, config=config, runtime=runtime)
        finally:
            runtime.close()
        assert _words(first.result) == _words(batch)
        assert first.result.errors_per_iteration == (
            batch.errors_per_iteration
        )
        assert first.epoch == 0
        assert first.n_changes == 0

    def test_advance_tracks_current_tensor(self):
        tensor = _tensor()
        deltas = _delta_stream(tensor, 3)
        with FactorizationSession(tensor, _config()) as session:
            session.factorize()
            current = tensor
            for index, delta in enumerate(deltas, start=1):
                epoch = session.advance(delta)
                current = current.apply_delta(delta)
                assert session.tensor == current
                assert epoch.epoch == index
                assert epoch.n_changes == delta.n_changes
            assert session.epoch == len(deltas)
            assert len(session.history) == len(deltas) + 1

    def test_run_equals_factorize_plus_advances(self):
        tensor = _tensor(seed=3)
        deltas = _delta_stream(tensor, 2, seed=4)
        with FactorizationSession(tensor, _config()) as a:
            a.factorize()
            stepwise = [a.advance(delta) for delta in deltas]
        with FactorizationSession(tensor, _config()) as b:
            streamed = b.run(deltas)
        assert len(streamed.epochs) == len(deltas) + 1
        for lhs, rhs in zip(stepwise, streamed.epochs[1:]):
            assert _words(lhs.result) == _words(rhs.result)
            assert lhs.error == rhs.error
        assert streamed.errors_per_epoch[-1] == stepwise[-1].error
        assert streamed.final.epoch == len(deltas)

    def test_empty_delta_converges_with_zero_stages(self):
        tensor = _tensor(seed=5)
        with FactorizationSession(tensor, _config()) as session:
            session.factorize()
            stages_before = session.runtime.metrics.value("stages_total")
            epoch = session.advance(TensorDelta.empty(tensor.shape))
            stages_after = session.runtime.metrics.value("stages_total")
        assert epoch.converged
        assert epoch.error == session.history[0].error
        assert epoch.dirty_columns == (0, 0, 0)
        assert epoch.columns_swept == 0
        assert stages_after == stages_before

    def test_quiet_stream_tracks_analytic_optimum(self):
        """Punch holes in cells exclusive to one planted component: the
        planted factors stay optimal and the optimum is the hole count."""
        from repro.bitops import packing

        rng = np.random.default_rng(7)
        tensor, factors = planted_tensor(
            (16, 16, 16), rank=5, factor_density=0.35, rng=rng
        )
        dense = [
            packing.unpack_bits(f.words, f.n_cols).reshape(
                f.n_rows, f.n_cols
            )
            for f in factors
        ]
        coords = tensor.coords
        coverage = (
            dense[0][coords[:, 0]]
            & dense[1][coords[:, 1]]
            & dense[2][coords[:, 2]]
        )
        exclusive = np.flatnonzero(
            coverage[:, 0] & (coverage.sum(axis=1) == 1)
        )
        holes = coords[exclusive[:2]]
        delta = TensorDelta.from_coords(tensor.shape, [], holes)
        config = _config(rank=5, max_iterations=8, n_partitions=3)
        with FactorizationSession(tensor, config) as session:
            first = session.factorize()
            if first.error != 0:
                pytest.skip("batch run missed the planted optimum")
            epoch = session.advance(delta)
        assert epoch.error == len(holes)
        assert epoch.converged

    def test_incremental_never_worse_than_baseline(self):
        tensor = _tensor(seed=6)
        deltas = _delta_stream(tensor, 2, seed=7)
        with FactorizationSession(tensor, _config()) as session:
            result = session.run(deltas)
        for previous, epoch in zip(result.epochs, result.epochs[1:]):
            delta = deltas[epoch.epoch - 1]
            # Warm-start guarantee: the epoch never ends above its own
            # baseline — the carried factors' error on the new tensor.
            baseline_ceiling = previous.error + delta.n_changes
            assert epoch.error <= baseline_ceiling


class TestBackendInvariance:
    def test_backends_bit_identical(self):
        tensor = _tensor(seed=8)
        deltas = _delta_stream(tensor, 2, seed=9)
        streams = {}
        for backend in ("serial", "thread", "process"):
            with FactorizationSession(
                tensor, _config(backend=backend)
            ) as session:
                streams[backend] = session.run(deltas)
        reference = streams["serial"]
        for backend in ("thread", "process"):
            other = streams[backend]
            assert other.errors_per_epoch == reference.errors_per_epoch
            for lhs, rhs in zip(reference.epochs, other.epochs):
                assert _words(lhs.result) == _words(rhs.result)
                assert lhs.result.errors_per_iteration == (
                    rhs.result.errors_per_iteration
                )


class TestCheckpointing:
    def test_replay_fast_forwards_bit_identically(self, tmp_path):
        tensor = _tensor(seed=10)
        deltas = _delta_stream(tensor, 2, seed=11)
        root = tmp_path / "ckpt"
        with FactorizationSession(
            tensor, _config(), checkpoint_root=root, keep_last=4
        ) as session:
            original = session.run(deltas)
        # Same stream, same root: every epoch resumes from its converged
        # snapshot instead of re-solving.
        with FactorizationSession(
            tensor, _config(), checkpoint_root=root, keep_last=4
        ) as session:
            stages_before = session.runtime.metrics.value("stages_total")
            replayed = session.run(deltas)
        assert replayed.errors_per_epoch == original.errors_per_epoch
        for lhs, rhs in zip(original.epochs, replayed.epochs):
            assert _words(lhs.result) == _words(rhs.result)

    def test_epoch_dirs_pruned_to_keep_last(self, tmp_path):
        tensor = _tensor(seed=12)
        deltas = _delta_stream(tensor, 3, seed=13)
        root = tmp_path / "ckpt"
        with FactorizationSession(
            tensor, _config(), checkpoint_root=root, keep_last=2
        ) as session:
            session.run(deltas)
        names = sorted(p.name for p in root.glob("epoch-*"))
        assert names == ["epoch-0002", "epoch-0003"]

    def test_no_checkpoint_root_writes_nothing(self, tmp_path):
        tensor = _tensor(seed=14)
        with FactorizationSession(tensor, _config()) as session:
            session.factorize()
        assert list(tmp_path.iterdir()) == []


class TestErrorPaths:
    def test_advance_before_factorize(self):
        tensor = _tensor()
        with FactorizationSession(tensor, _config()) as session:
            with pytest.raises(RuntimeError, match="factorize"):
                session.advance(TensorDelta.empty(tensor.shape))

    def test_factorize_twice(self):
        tensor = _tensor()
        with FactorizationSession(tensor, _config()) as session:
            session.factorize()
            with pytest.raises(RuntimeError, match="already ran"):
                session.factorize()

    def test_steps_needs_fresh_session(self):
        tensor = _tensor()
        with FactorizationSession(tensor, _config()) as session:
            session.factorize()
            with pytest.raises(RuntimeError, match="fresh session"):
                next(session.steps([]))

    def test_closed_session_rejected(self):
        tensor = _tensor()
        session = FactorizationSession(tensor, _config())
        session.close()
        with pytest.raises(RuntimeError, match="closed"):
            session.factorize()

    def test_config_checkpoint_rejected(self, tmp_path):
        tensor = _tensor()
        config = _config(
            checkpoint=CheckpointConfig(directory=tmp_path / "ckpt")
        )
        with pytest.raises(ValueError, match="checkpoint_root"):
            FactorizationSession(tensor, config)

    def test_non_three_way_tensor_rejected(self):
        matrix = SparseBoolTensor.empty((4, 4))
        with pytest.raises(ValueError, match="three-way"):
            FactorizationSession(matrix, _config())

    def test_bad_retention_args_rejected(self):
        tensor = _tensor()
        with pytest.raises(ValueError, match="keep_last"):
            FactorizationSession(tensor, _config(), keep_last=0)
        with pytest.raises(ValueError, match="checkpoint_every"):
            FactorizationSession(tensor, _config(), checkpoint_every=0)
