"""FactorizationService behavior: identity, fairness, cancel, isolation."""

import numpy as np
import pytest

from repro.distengine import DEFAULT_CLUSTER
from repro.service import (
    AdmissionError,
    FactorizationService,
    JobSpec,
    JobState,
    ServiceConfig,
    TenantQuota,
)
from repro.tensor import SparseBoolTensor, planted_tensor


def make_tensor(seed=0, dim=10):
    tensor, _ = planted_tensor(
        (dim, dim, dim), rank=3, factor_density=0.3,
        rng=np.random.default_rng(seed),
    )
    return tensor


def make_spec(tenant="acme", seed=0, **kwargs):
    kwargs.setdefault("rank", 3)
    kwargs.setdefault("max_iterations", 3)
    return JobSpec(tenant=tenant, tensor=make_tensor(), seed=seed, **kwargs)


class TestJobSpec:
    def test_deterministic_id(self):
        assert make_spec().job_id == make_spec().job_id

    def test_id_depends_on_work_fields(self):
        base = make_spec()
        assert base.job_id != make_spec(tenant="other").job_id
        assert base.job_id != make_spec(seed=1).job_id
        assert base.job_id != make_spec(rank=4).job_id
        assert base.job_id != make_spec(method="tucker").job_id

    def test_id_depends_on_tensor_content(self):
        spec_a = make_spec()
        spec_b = JobSpec(tenant="acme", tensor=make_tensor(seed=9), rank=3,
                         max_iterations=3)
        assert spec_a.job_id != spec_b.job_id

    def test_id_ignores_priority(self):
        assert make_spec().job_id == make_spec(priority=7).job_id

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"tenant": ""},
            {"method": "als"},
            {"rank": 0},
            {"max_iterations": 0},
            {"n_initial_sets": 0},
        ],
    )
    def test_validation(self, kwargs):
        base = dict(tenant="a", tensor=make_tensor())
        base.update(kwargs)
        with pytest.raises(ValueError):
            JobSpec(**base)


class TestSubmit:
    def test_submit_is_idempotent(self):
        with FactorizationService() as service:
            first = service.submit(make_spec())
            second = service.submit(make_spec())
            assert first.job_id == second.job_id
            assert len(service.jobs) == 1

    def test_resubmit_bumps_priority(self):
        with FactorizationService() as service:
            service.submit(make_spec(priority=0))
            bumped = service.submit(make_spec(priority=5))
            assert bumped.priority == 5

    def test_admission_error_propagates(self):
        config = ServiceConfig(default_quota=TenantQuota(max_pending=1))
        with FactorizationService(config) as service:
            service.submit(make_spec(seed=0))
            with pytest.raises(AdmissionError):
                service.submit(make_spec(seed=1))
            # The refused job left no record behind.
            assert len(service.jobs) == 1

    def test_submit_after_done_returns_cached(self):
        with FactorizationService() as service:
            job_id = service.submit(make_spec()).job_id
            service.drain()
            again = service.submit(make_spec())
            assert again.job_id == job_id
            assert again.state is JobState.DONE


class TestDrain:
    def test_all_methods_complete(self):
        tensor = make_tensor()
        with FactorizationService() as service:
            for method in ("dbtf", "nway-cp", "tucker"):
                service.submit(JobSpec(tenant="a", tensor=tensor,
                                       method=method, rank=3,
                                       max_iterations=2))
            statuses = service.drain()
        assert [s.state for s in statuses] == [JobState.DONE] * 3
        assert all(s.error is not None for s in statuses)

    def test_results_match_direct_solver(self):
        from repro.core import dbtf

        tensor = make_tensor()
        direct = dbtf(tensor, rank=3, max_iterations=3, seed=0)
        with FactorizationService() as service:
            job_id = service.submit(
                JobSpec(tenant="a", tensor=tensor, rank=3, max_iterations=3)
            ).job_id
            service.drain()
            result = service.result(job_id)
        assert result.error == direct.error
        assert result.errors_per_iteration == direct.errors_per_iteration
        for mine, theirs in zip(result.factors, direct.factors):
            assert np.array_equal(mine.words, theirs.words)

    def test_fair_share_interleaves_tenants(self):
        config = ServiceConfig(max_live_jobs=4)
        with FactorizationService(config) as service:
            for tenant in ("a", "b"):
                for seed in range(2):
                    service.submit(make_spec(tenant=tenant, seed=seed))
            service.drain()
            vtimes = service.scheduler.snapshot()
        assert vtimes["a"] == vtimes["b"]

    def test_no_leases_leak(self):
        with FactorizationService() as service:
            for seed in range(3):
                service.submit(make_spec(seed=seed))
            service.drain()
            assert service.factory.open_leases == 0

    def test_result_before_done_raises(self):
        with FactorizationService() as service:
            job_id = service.submit(make_spec()).job_id
            with pytest.raises(RuntimeError):
                service.result(job_id)

    def test_unknown_job_raises(self):
        with FactorizationService() as service:
            with pytest.raises(KeyError):
                service.status("job-0000000000000000")


class TestCancel:
    def test_cancel_pending(self):
        config = ServiceConfig(max_live_jobs=1)
        with FactorizationService(config) as service:
            running = service.submit(make_spec(seed=0)).job_id
            waiting = service.submit(make_spec(seed=1)).job_id
            service.step()  # activates the first job only
            status = service.cancel(waiting)
            assert status.state is JobState.CANCELLED
            assert service.queue.total_depth() == 0
            statuses = {s.job_id: s for s in service.drain()}
            assert statuses[running].state is JobState.DONE
            assert statuses[waiting].state is JobState.CANCELLED

    def test_cancel_running_frees_capacity(self):
        config = ServiceConfig(max_live_jobs=1)
        with FactorizationService(config) as service:
            first = service.submit(make_spec(seed=0)).job_id
            second = service.submit(make_spec(seed=1)).job_id
            service.step()
            assert service.status(first).state is JobState.RUNNING
            service.cancel(first)
            assert service.factory.open_leases == 0
            service.step()
            assert service.status(second).state is JobState.RUNNING
            statuses = {s.job_id: s for s in service.drain()}
            assert statuses[second].state is JobState.DONE

    def test_cancel_terminal_is_noop(self):
        with FactorizationService() as service:
            job_id = service.submit(make_spec()).job_id
            service.drain()
            assert service.cancel(job_id).state is JobState.DONE


class TestFailureIsolation:
    def test_bad_job_fails_alone(self):
        # A 4-way tensor is invalid for dbtf; the sibling job must finish.
        bad_tensor = SparseBoolTensor.empty((2, 2, 2, 2))
        with FactorizationService() as service:
            bad = service.submit(
                JobSpec(tenant="a", tensor=bad_tensor, rank=2,
                        max_iterations=2)
            ).job_id
            good = service.submit(make_spec(tenant="b")).job_id
            statuses = {s.job_id: s for s in service.drain()}
        assert statuses[bad].state is JobState.FAILED
        assert "three-way" in statuses[bad].message
        assert statuses[good].state is JobState.DONE

    def test_failed_lease_released(self):
        bad_tensor = SparseBoolTensor.empty((2, 2, 2, 2))
        with FactorizationService() as service:
            service.submit(JobSpec(tenant="a", tensor=bad_tensor, rank=2,
                                   max_iterations=2))
            service.drain()
            assert service.factory.open_leases == 0


class TestPreemption:
    def test_high_priority_preempts_at_boundary(self):
        config = ServiceConfig(max_live_jobs=1)
        with FactorizationService(config) as service:
            low = service.submit(make_spec(tenant="bg", seed=0)).job_id
            service.step()  # activate low, run one step (checkpointed)
            service.step()
            high = service.submit(
                make_spec(tenant="urgent", seed=1, priority=5)
            ).job_id
            service.step()
            assert service.status(high).state is JobState.RUNNING
            assert service.status(low).state is JobState.PENDING
            assert service.status(low).preemptions == 1
            statuses = {s.job_id: s for s in service.drain()}
            assert statuses[low].state is JobState.DONE
            assert statuses[high].state is JobState.DONE

    def test_preempted_resumes_from_checkpoint(self):
        from repro.core import dbtf

        tensor = make_tensor()
        config = ServiceConfig(max_live_jobs=1)
        with FactorizationService(config) as service:
            low = service.submit(
                JobSpec(tenant="bg", tensor=tensor, rank=3, max_iterations=4)
            ).job_id
            service.step()
            service.step()
            service.submit(make_spec(tenant="urgent", seed=1, priority=5))
            statuses = {s.job_id: s for s in service.drain()}
            assert statuses[low].state is JobState.DONE
            result = service.result(low)
        direct = dbtf(tensor, rank=3, max_iterations=4, seed=0)
        assert result.error == direct.error
        for mine, theirs in zip(result.factors, direct.factors):
            assert np.array_equal(mine.words, theirs.words)


class TestMetrics:
    def test_per_tenant_accounting(self):
        with FactorizationService() as service:
            service.submit(make_spec(tenant="a", seed=0))
            service.submit(make_spec(tenant="b", seed=1))
            service.drain()
            metrics = service.metrics
            assert metrics.value("service_jobs_completed_total", tenant="a") == 1
            assert metrics.value("service_jobs_completed_total", tenant="b") == 1
            assert metrics.value("tenant_shuffle_bytes_total", tenant="a") > 0
            latency = metrics.histogram(
                "job_latency_seconds", tenant="a"
            )
            assert latency.count == 1
            assert latency.quantile(0.5) is not None
            assert latency.quantile(0.99) >= latency.quantile(0.5)

    def test_gauges_track_queue_and_running(self):
        config = ServiceConfig(max_live_jobs=1)
        with FactorizationService(config) as service:
            service.submit(make_spec(seed=0))
            service.submit(make_spec(seed=1))
            service.step()
            assert service.metrics.value(
                "service_queue_depth", tenant="acme"
            ) == 1
            assert service.metrics.value(
                "service_running_jobs", tenant="acme"
            ) == 1
            service.drain()
            assert service.metrics.value(
                "service_queue_depth", tenant="acme"
            ) == 0

    def test_metrics_jsonl_export(self):
        import json

        from repro.observability import metrics_to_jsonl

        with FactorizationService() as service:
            service.submit(make_spec())
            service.drain()
            lines = metrics_to_jsonl(service.metrics).splitlines()
        rows = [json.loads(line) for line in lines]
        names = {row["name"] for row in rows}
        assert "service_jobs_completed_total" in names
        assert "job_latency_seconds" in names
        latency = next(r for r in rows if r["name"] == "job_latency_seconds")
        assert latency["snapshot"]["p50"] is not None


class TestClose:
    def test_close_releases_live_jobs(self):
        config = ServiceConfig(max_live_jobs=2)
        service = FactorizationService(config)
        service.submit(make_spec(seed=0))
        service.submit(make_spec(seed=1))
        service.step()
        service.close()
        assert service.factory.open_leases == 0
        with pytest.raises(RuntimeError):
            service.step()

    def test_close_is_idempotent(self):
        service = FactorizationService()
        service.close()
        service.close()
