"""The ``jobs`` CLI group and checkpoint flags over the file spool."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.tensor import planted_tensor, save_tensor


@pytest.fixture
def tensor_file(tmp_path):
    tensor, _ = planted_tensor(
        (10, 10, 10), rank=3, factor_density=0.3,
        rng=np.random.default_rng(0),
    )
    path = tmp_path / "input.tns"
    save_tensor(tensor, path)
    return path, tensor


def submit(spool, tensor_path, tenant, capsys, *extra):
    code = main(["jobs", "--spool", str(spool), "submit", str(tensor_path),
                 "--tenant", tenant, "--rank", "3", "--max-iterations", "3",
                 *extra])
    assert code == 0
    return capsys.readouterr().out.strip().splitlines()[-1]


class TestParser:
    def test_jobs_requires_spool(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["jobs", "status"])

    def test_jobs_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["jobs", "--spool", "s"])

    def test_checkpoint_keep_last_default(self):
        args = build_parser().parse_args(["factorize", "x.tns"])
        assert args.checkpoint_keep_last == 2


class TestSubmitStatus:
    def test_submit_prints_deterministic_id(self, tensor_file, tmp_path,
                                            capsys):
        path, _ = tensor_file
        spool = tmp_path / "spool"
        first = submit(spool, path, "acme", capsys)
        second = submit(spool, path, "acme", capsys)
        assert first == second
        assert first.startswith("job-")

    def test_status_before_serve(self, tensor_file, tmp_path, capsys):
        path, _ = tensor_file
        spool = tmp_path / "spool"
        job_id = submit(spool, path, "acme", capsys)
        assert main(["jobs", "--spool", str(spool), "status"]) == 0
        out = capsys.readouterr().out
        assert job_id in out
        assert "spooled" in out
        assert "acme" in out

    def test_status_empty_spool(self, tmp_path, capsys):
        assert main(["jobs", "--spool", str(tmp_path / "s"), "status"]) == 0
        assert "empty" in capsys.readouterr().out


class TestServe:
    def test_serve_completes_and_results_readable(self, tensor_file,
                                                  tmp_path, capsys):
        path, _ = tensor_file
        spool = tmp_path / "spool"
        acme = submit(spool, path, "acme", capsys)
        beta = submit(spool, path, "beta", capsys, "--seed", "1")
        code = main(["jobs", "--spool", str(spool), "serve"])
        assert code == 0
        out = capsys.readouterr().out
        assert "serving 2 jobs" in out
        assert "acme: done=1" in out

        assert main(["jobs", "--spool", str(spool), "result", acme]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["tenant"] == "acme"
        assert summary["error"] >= 0
        assert summary["converged"] in (True, False)
        assert beta != acme

    def test_interrupted_serve_resumes(self, tensor_file, tmp_path, capsys):
        path, _ = tensor_file
        spool = tmp_path / "spool"
        job_id = submit(spool, path, "acme", capsys)
        assert main(["jobs", "--spool", str(spool), "serve",
                     "--max-steps", "2"]) == 0
        assert "resume on the next serve" in capsys.readouterr().out
        # The job is mid-flight with checkpoints on disk.
        snapshots = list((spool / "checkpoints" / job_id).glob("*.ckpt"))
        assert snapshots
        assert main(["jobs", "--spool", str(spool), "serve"]) == 0
        capsys.readouterr()
        assert main(["jobs", "--spool", str(spool), "status", job_id]) == 0
        assert "done" in capsys.readouterr().out

    def test_interrupted_serve_matches_uninterrupted(self, tensor_file,
                                                     tmp_path, capsys):
        path, _ = tensor_file
        direct_spool = tmp_path / "direct"
        killed_spool = tmp_path / "killed"
        direct_id = submit(direct_spool, path, "acme", capsys)
        killed_id = submit(killed_spool, path, "acme", capsys)
        assert direct_id == killed_id
        main(["jobs", "--spool", str(direct_spool), "serve"])
        main(["jobs", "--spool", str(killed_spool), "serve",
              "--max-steps", "2"])
        main(["jobs", "--spool", str(killed_spool), "serve"])
        capsys.readouterr()
        main(["jobs", "--spool", str(direct_spool), "result", direct_id])
        direct = json.loads(capsys.readouterr().out)
        main(["jobs", "--spool", str(killed_spool), "result", killed_id])
        resumed = json.loads(capsys.readouterr().out)
        assert resumed["error"] == direct["error"]
        assert resumed["errors_per_iteration"] == direct["errors_per_iteration"]

    def test_serve_empty_spool(self, tmp_path, capsys):
        assert main(["jobs", "--spool", str(tmp_path / "s"), "serve"]) == 0
        assert "nothing to do" in capsys.readouterr().out

    def test_serve_writes_metrics(self, tensor_file, tmp_path, capsys):
        path, _ = tensor_file
        spool = tmp_path / "spool"
        submit(spool, path, "acme", capsys)
        metrics_path = tmp_path / "metrics.jsonl"
        assert main(["jobs", "--spool", str(spool), "serve",
                     "--metrics-out", str(metrics_path)]) == 0
        rows = [json.loads(line)
                for line in metrics_path.read_text().splitlines()]
        names = {row["name"] for row in rows}
        assert "service_jobs_completed_total" in names
        assert "job_latency_seconds" in names

    def test_bad_weight_flag(self, tensor_file, tmp_path, capsys):
        path, _ = tensor_file
        spool = tmp_path / "spool"
        submit(spool, path, "acme", capsys)
        assert main(["jobs", "--spool", str(spool), "serve",
                     "--weight", "nonsense"]) == 2


class TestCancel:
    def test_cancel_marks_and_serve_honors(self, tensor_file, tmp_path,
                                           capsys):
        path, _ = tensor_file
        spool = tmp_path / "spool"
        doomed = submit(spool, path, "acme", capsys)
        kept = submit(spool, path, "beta", capsys, "--seed", "1")
        assert main(["jobs", "--spool", str(spool), "cancel", doomed]) == 0
        assert main(["jobs", "--spool", str(spool), "serve"]) == 0
        out = capsys.readouterr().out
        assert "serving 1 jobs" in out
        capsys.readouterr()
        main(["jobs", "--spool", str(spool), "status"])
        out = capsys.readouterr().out
        assert "cancelled" in out
        assert "done" in out
        assert kept != doomed

    def test_cancel_unknown_job(self, tmp_path, capsys):
        assert main(["jobs", "--spool", str(tmp_path / "s"), "cancel",
                     "job-ffffffffffffffff"]) == 2

    def test_result_missing(self, tensor_file, tmp_path, capsys):
        path, _ = tensor_file
        spool = tmp_path / "spool"
        job_id = submit(spool, path, "acme", capsys)
        assert main(["jobs", "--spool", str(spool), "result", job_id]) == 1


class TestCheckpointKeepLast:
    def test_threaded_to_retention(self, tensor_file, tmp_path):
        path, _ = tensor_file
        ckpt = tmp_path / "ckpt"
        code = main(["factorize", str(path), "--method", "dbtf",
                     "--rank", "3", "--max-iterations", "4",
                     "--checkpoint-dir", str(ckpt),
                     "--checkpoint-keep-last", "1"])
        assert code == 0
        assert len(list(ckpt.glob("checkpoint-*.ckpt"))) == 1

    def test_default_retention_is_two(self, tensor_file, tmp_path):
        path, _ = tensor_file
        ckpt = tmp_path / "ckpt"
        code = main(["factorize", str(path), "--method", "dbtf",
                     "--rank", "3", "--max-iterations", "4",
                     "--checkpoint-dir", str(ckpt)])
        assert code == 0
        assert len(list(ckpt.glob("checkpoint-*.ckpt"))) == 2
