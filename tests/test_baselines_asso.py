"""Unit tests for the ASSO Boolean matrix factorization."""

import numpy as np
import pytest

from repro.bitops import BitMatrix, boolean_matmul
from repro.baselines import MemoryBudgetExceeded, asso, association_matrix


class TestAssociationMatrix:
    def test_perfect_implication(self):
        # Column 0 implies column 1 (every 1 in col 0 has a 1 in col 1).
        matrix = np.array([[1, 1], [1, 1], [0, 1]], dtype=np.uint8)
        assoc = association_matrix(matrix)
        assert assoc[0, 1] == pytest.approx(1.0)
        assert assoc[1, 0] == pytest.approx(2 / 3)

    def test_diagonal_is_one(self):
        rng = np.random.default_rng(0)
        matrix = (rng.random((6, 5)) < 0.5).astype(np.uint8)
        matrix[:, 2] = [1, 0, 1, 0, 1, 0]  # make sure no column is empty
        assoc = association_matrix(matrix)
        nonempty = matrix.sum(axis=0) > 0
        np.testing.assert_allclose(np.diag(assoc)[nonempty], 1.0)

    def test_empty_column_implies_nothing(self):
        matrix = np.array([[0, 1], [0, 1]], dtype=np.uint8)
        assoc = association_matrix(matrix)
        assert assoc[0, 1] == 0.0

    def test_memory_budget_enforced(self):
        matrix = np.zeros((2, 100), dtype=np.uint8)
        with pytest.raises(MemoryBudgetExceeded):
            association_matrix(matrix, memory_budget_bytes=100)


class TestAsso:
    def test_recovers_block_structure(self):
        # A matrix that is exactly the Boolean product of rank-2 factors.
        usage = np.array([[1, 0], [1, 0], [0, 1], [1, 1]], dtype=np.uint8)
        basis = np.array([[1, 1, 0, 0, 0], [0, 0, 0, 1, 1]], dtype=np.uint8)
        product = ((usage @ basis) > 0).astype(np.uint8)
        matrix = BitMatrix.from_dense(product)
        result = asso(matrix, rank=2, threshold=0.9)
        reconstructed = boolean_matmul(result.usage, result.basis)
        assert matrix.hamming_distance(reconstructed) == 0

    def test_usage_shape(self):
        rng = np.random.default_rng(1)
        matrix = BitMatrix.random(10, 14, 0.3, rng)
        result = asso(matrix, rank=3)
        assert result.usage.shape == (10, 3)
        assert result.basis.shape == (3, 14)

    def test_never_worse_than_empty_factorization(self):
        rng = np.random.default_rng(2)
        matrix = BitMatrix.random(12, 12, 0.4, rng)
        result = asso(matrix, rank=4)
        reconstructed = boolean_matmul(result.usage, result.basis)
        assert matrix.hamming_distance(reconstructed) <= matrix.count_nonzeros()

    def test_empty_matrix_gives_empty_factors(self):
        result = asso(BitMatrix.zeros(5, 5), rank=2)
        assert result.usage.count_nonzeros() == 0
        assert result.basis.count_nonzeros() == 0
        assert result.score == 0.0

    def test_score_positive_when_structure_found(self):
        usage = np.array([[1], [1], [1]], dtype=np.uint8)
        basis = np.array([[1, 1, 1]], dtype=np.uint8)
        product = ((usage @ basis) > 0).astype(np.uint8)
        result = asso(BitMatrix.from_dense(product), rank=1)
        assert result.score > 0

    def test_invalid_rank(self):
        with pytest.raises(ValueError):
            asso(BitMatrix.zeros(2, 2), rank=0)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            asso(BitMatrix.zeros(2, 2), rank=1, threshold=0.0)

    def test_weight_negative_discourages_overcover(self):
        # With a huge penalty for covering zeros, ASSO must cover no zeros.
        rng = np.random.default_rng(3)
        matrix = BitMatrix.random(10, 10, 0.3, rng)
        result = asso(matrix, rank=3, weight_negative=1000.0)
        reconstructed = boolean_matmul(result.usage, result.basis)
        dense = matrix.to_dense()
        overcovered = (reconstructed.to_dense() == 1) & (dense == 0)
        assert overcovered.sum() == 0
