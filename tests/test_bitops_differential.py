"""Differential correctness harness for the kernel-dispatch registry.

Every registered implementation of every kernel must produce bit-identical
packed words on the same inputs — this is the contract that lets the
dispatch tier (heuristic, autotuned, or forced) change *speed* without
ever changing *results*.  Shapes cover the degenerate cases dispatch has
to survive: 0-row/0-column operands, the exact batched-path threshold,
and >64-column multi-word rows.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitops import BitMatrix, HAS_NUMBA
from repro.bitops import dispatch
from repro.bitops.ops import _BATCH_MIN_ROWS

#: Dimensions that historically break packed-bit kernels: empty, single,
#: word-boundary straddlers (63/64/65), the batched-matmul threshold, and
#: multi-word widths.
EDGE_DIMS = [0, 1, 7, 8, 31, _BATCH_MIN_ROWS - 1, _BATCH_MIN_ROWS,
             _BATCH_MIN_ROWS + 1, 63, 64, 65, 129]

dims = st.sampled_from(EDGE_DIMS) | st.integers(min_value=0, max_value=140)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


def _impl_items(kernel_name):
    entry = dispatch.kernel(kernel_name)
    return sorted(entry.impls.items())


def _assert_all_equal(kernel_name, reference, outputs):
    for name, out in outputs:
        assert out == reference, (
            f"{kernel_name} impl {name!r} diverged from the reference "
            f"on shape {reference.shape}"
        )
        assert out.words.dtype == np.uint64


class TestBooleanMatmulDifferential:
    @settings(max_examples=60, deadline=None)
    @given(m=dims, k=dims, n=dims, seed=seeds)
    def test_all_impls_bit_identical(self, m, k, n, seed):
        rng = np.random.default_rng(seed)
        left = BitMatrix.random(m, k, 0.3, rng)
        right = BitMatrix.random(k, n, 0.3, rng)
        entry = dispatch.kernel("boolean_matmul")
        reference = entry.reference.fn(left, right)
        outputs = [
            (name, spec.fn(left, right))
            for name, spec in _impl_items("boolean_matmul")
            if spec.eligible()
        ]
        _assert_all_equal("boolean_matmul", reference, outputs)

    @pytest.mark.parametrize(
        "m", [_BATCH_MIN_ROWS - 1, _BATCH_MIN_ROWS, _BATCH_MIN_ROWS + 1]
    )
    def test_at_threshold_rows(self, m):
        """The exact dispatch boundary gets explicit (non-random) coverage."""
        rng = np.random.default_rng(7)
        left = BitMatrix.random(m, 70, 0.4, rng)
        right = BitMatrix.random(70, 130, 0.4, rng)
        entry = dispatch.kernel("boolean_matmul")
        reference = entry.reference.fn(left, right)
        for name, spec in _impl_items("boolean_matmul"):
            if spec.eligible():
                assert spec.fn(left, right) == reference, name


class TestKhatriRaoDifferential:
    @settings(max_examples=40, deadline=None)
    @given(
        p=st.sampled_from([0, 1, 5, 17, 33]) | st.integers(0, 40),
        q=st.sampled_from([0, 1, 5, 17, 33]) | st.integers(0, 40),
        r=dims,
        seed=seeds,
    )
    def test_all_impls_bit_identical(self, p, q, r, seed):
        rng = np.random.default_rng(seed)
        left = BitMatrix.random(p, r, 0.4, rng)
        right = BitMatrix.random(q, r, 0.4, rng)
        entry = dispatch.kernel("khatri_rao")
        reference = entry.reference.fn(left, right)
        outputs = [
            (name, spec.fn(left, right))
            for name, spec in _impl_items("khatri_rao")
            if spec.eligible()
        ]
        _assert_all_equal("khatri_rao", reference, outputs)


class TestPointwiseDifferential:
    @settings(max_examples=40, deadline=None)
    @given(rows=dims, cols=dims, seed=seeds)
    def test_all_impls_bit_identical(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        matrix = BitMatrix.random(rows, cols, 0.4, rng)
        vector = (rng.random(cols) < 0.5).astype(np.uint8)
        entry = dispatch.kernel("pointwise_vector_matrix")
        reference = entry.reference.fn(vector, matrix)
        outputs = [
            (name, spec.fn(vector, matrix))
            for name, spec in _impl_items("pointwise_vector_matrix")
            if spec.eligible()
        ]
        _assert_all_equal("pointwise_vector_matrix", reference, outputs)


class TestXorPopcountDifferential:
    @settings(max_examples=40, deadline=None)
    @given(rows=dims, words=st.sampled_from([0, 1, 2, 3, 9]), seed=seeds)
    def test_rows_impls_identical(self, rows, words, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 1 << 64, size=(rows, words), dtype=np.uint64)
        b = rng.integers(0, 1 << 64, size=(rows, words), dtype=np.uint64)
        entry = dispatch.kernel("xor_popcount_rows")
        reference = entry.reference.fn(a, b)
        for name, spec in _impl_items("xor_popcount_rows"):
            if spec.eligible():
                out = np.asarray(spec.fn(a, b))
                assert out.shape == reference.shape, name
                assert np.array_equal(out, reference), name

    @settings(max_examples=40, deadline=None)
    @given(rows=dims, words=st.sampled_from([0, 1, 2, 3, 9]), seed=seeds)
    def test_total_impls_identical(self, rows, words, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 1 << 64, size=(rows, words), dtype=np.uint64)
        b = rng.integers(0, 1 << 64, size=(rows, words), dtype=np.uint64)
        entry = dispatch.kernel("xor_popcount")
        reference = entry.reference.fn(a, b)
        for name, spec in _impl_items("xor_popcount"):
            if spec.eligible():
                assert int(spec.fn(a, b)) == reference, name

    def test_three_dimensional_operands(self):
        """The CP hot path calls the rows kernel on (rows, blocks, words)."""
        rng = np.random.default_rng(3)
        a = rng.integers(0, 1 << 64, size=(11, 4, 3), dtype=np.uint64)
        b = rng.integers(0, 1 << 64, size=(11, 4, 3), dtype=np.uint64)
        entry = dispatch.kernel("xor_popcount_rows")
        reference = entry.reference.fn(a, b)
        assert reference.shape == (11, 4)
        for name, spec in _impl_items("xor_popcount_rows"):
            if spec.eligible():
                assert np.array_equal(np.asarray(spec.fn(a, b)), reference), name

    def test_broadcast_operands(self):
        """Broadcasting (1, W) against (N, W) must match materialized inputs."""
        rng = np.random.default_rng(4)
        a = rng.integers(0, 1 << 64, size=(1, 5), dtype=np.uint64)
        b = rng.integers(0, 1 << 64, size=(24, 5), dtype=np.uint64)
        entry = dispatch.kernel("xor_popcount_rows")
        reference = entry.reference.fn(np.broadcast_to(a, b.shape), b)
        for name, spec in _impl_items("xor_popcount_rows"):
            if spec.eligible():
                assert np.array_equal(np.asarray(spec.fn(a, b)), reference), name


class TestRegistryCompleteness:
    """The registry itself is part of the contract the harness verifies."""

    EXPECTED = {
        "boolean_matmul": {"rowloop", "batched", "bulk"},
        "khatri_rao": {"rowloop", "broadcast", "bulk"},
        "pointwise_vector_matrix": {"rowloop", "mask", "dense"},
        "xor_popcount": {"twopass", "fused", "bytelut"},
        "xor_popcount_rows": {"twopass", "fused", "bytelut"},
    }

    def test_every_kernel_registered_with_expected_impls(self):
        assert set(self.EXPECTED) <= set(dispatch.kernel_names())
        for kernel_name, expected in self.EXPECTED.items():
            registered = set(dispatch.kernel(kernel_name).impls)
            assert expected <= registered, kernel_name

    def test_every_kernel_has_a_reference_impl(self):
        for kernel_name in self.EXPECTED:
            entry = dispatch.kernel(kernel_name)
            assert entry.reference_name is not None
            assert entry.reference.reference

    def test_batched_matmul_declares_endianness_requirement(self):
        spec = dispatch.kernel("boolean_matmul").impls["batched"]
        assert spec.needs_little_endian

    def test_little_endian_guard_forces_rowloop(self, monkeypatch):
        """The previously untested byteorder guard, now via the registry.

        Compute the batched result first (on this little-endian host), then
        monkeypatch the reported byteorder: the batched impl must become
        ineligible, the fixed-tier heuristic must fall back to the row
        loop, and the row-loop output must equal the batched one.
        """
        import sys as real_sys

        from repro.bitops import boolean_matmul
        from repro.bitops import dispatch as dispatch_module

        rng = np.random.default_rng(11)
        left = BitMatrix.random(_BATCH_MIN_ROWS + 8, 70, 0.4, rng)
        right = BitMatrix.random(70, 90, 0.4, rng)
        entry = dispatch.kernel("boolean_matmul")
        batched_expected = entry.impls["batched"].fn(left, right)

        monkeypatch.setattr(real_sys, "byteorder", "big")
        assert not entry.impls["batched"].eligible()
        dispatcher = dispatch_module.KernelDispatcher(tier="fixed")
        shape = (left.n_rows, left.n_cols, right.n_cols)
        assert dispatcher.choose("boolean_matmul", shape) == "rowloop"
        # Forcing the batched tier must also refuse the ineligible impl.
        forced = dispatch_module.KernelDispatcher(tier="batched")
        assert forced.choose("boolean_matmul", shape) == "rowloop"
        # And the public wrapper's output is unchanged.
        assert boolean_matmul(left, right) == batched_expected


@pytest.mark.skipif(not HAS_NUMBA, reason="numba not installed")
class TestNumbaBackend:
    """Exercised only where Numba exists (skipped in the default CI image)."""

    def test_numba_impls_registered(self):
        assert "numba" in dispatch.kernel("boolean_matmul").impls
        assert "numba" in dispatch.kernel("xor_popcount").impls
        assert "numba" in dispatch.kernel("xor_popcount_rows").impls

    def test_numba_matmul_matches_reference(self):
        rng = np.random.default_rng(5)
        left = BitMatrix.random(40, 70, 0.3, rng)
        right = BitMatrix.random(70, 130, 0.3, rng)
        entry = dispatch.kernel("boolean_matmul")
        assert entry.impls["numba"].fn(left, right) == entry.reference.fn(
            left, right
        )

    def test_numba_xor_matches_reference(self):
        rng = np.random.default_rng(6)
        a = rng.integers(0, 1 << 64, size=(33, 4), dtype=np.uint64)
        b = rng.integers(0, 1 << 64, size=(33, 4), dtype=np.uint64)
        rows = dispatch.kernel("xor_popcount_rows")
        total = dispatch.kernel("xor_popcount")
        assert np.array_equal(
            np.asarray(rows.impls["numba"].fn(a, b)), rows.reference.fn(a, b)
        )
        assert int(total.impls["numba"].fn(a, b)) == total.reference.fn(a, b)
