"""Cross-module property tests: end-to-end invariants of the library.

These exercise whole pipelines under hypothesis-generated inputs, checking
properties that must hold for *any* valid input, not just the happy paths
the unit tests cover.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import dbtf
from repro.baselines import bcp_als, walk_n_merge
from repro.metrics import description_length, reconstruction_error
from repro.tensor import SparseBoolTensor, random_factors, tensor_from_factors


def small_random_tensor(shape, density, seed):
    rng = np.random.default_rng(seed)
    dense = (rng.random(shape) < density).astype(np.uint8)
    return SparseBoolTensor.from_dense(dense)


class TestDecompositionInvariants:
    @given(
        st.tuples(st.integers(3, 8), st.integers(3, 8), st.integers(3, 8)),
        st.floats(0.05, 0.5),
        st.integers(1, 4),
        st.integers(0, 99),
    )
    @settings(max_examples=15, deadline=None)
    def test_dbtf_error_never_exceeds_trivial_models(self, shape, density, rank, seed):
        tensor = small_random_tensor(shape, density, seed)
        result = dbtf(tensor, rank=rank, seed=seed, n_partitions=2, max_iterations=2)
        # Never worse than the all-zero model.
        assert 0 <= result.error <= tensor.nnz
        # The reported error is the true reconstruction error.
        assert result.error == reconstruction_error(tensor, result.factors)

    @given(st.integers(0, 99))
    @settings(max_examples=10, deadline=None)
    def test_bcp_als_error_matches_factors(self, seed):
        tensor = small_random_tensor((6, 7, 5), 0.3, seed)
        result = bcp_als(tensor, rank=2, max_iterations=2)
        assert result.error == reconstruction_error(tensor, result.factors)

    @given(st.integers(0, 99))
    @settings(max_examples=10, deadline=None)
    def test_walk_n_merge_error_matches_factors(self, seed):
        tensor = small_random_tensor((8, 8, 8), 0.2, seed)
        result = walk_n_merge(tensor, rank=3)
        assert result.error == reconstruction_error(tensor, result.factors)

    @given(st.integers(0, 99), st.integers(1, 3))
    @settings(max_examples=10, deadline=None)
    def test_exact_cp_structure_is_representable(self, seed, rank):
        # DBTF at the true rank, initialized well, must reach zero error on
        # a noise-free factor tensor given enough restarts... at minimum it
        # must never report a *negative improvement* trajectory.
        rng = np.random.default_rng(seed)
        factors = random_factors((8, 8, 8), rank, 0.4, rng)
        tensor = tensor_from_factors(factors)
        result = dbtf(tensor, rank=rank, seed=seed, n_partitions=2,
                      n_initial_sets=2)
        errors = result.errors_per_iteration
        assert all(a >= b for a, b in zip(errors, errors[1:]))

    @given(st.integers(0, 99))
    @settings(max_examples=10, deadline=None)
    def test_mdl_is_finite_and_positive(self, seed):
        tensor = small_random_tensor((6, 6, 6), 0.3, seed)
        rng = np.random.default_rng(seed)
        factors = random_factors((6, 6, 6), 2, 0.5, rng)
        bits = description_length(tensor, factors)
        assert np.isfinite(bits)
        assert bits > 0


class TestSerializationInvariants:
    @given(st.integers(0, 999))
    @settings(max_examples=15, deadline=None)
    def test_tensor_io_round_trip_property(self, tmp_path_factory, seed):
        tensor = small_random_tensor((5, 6, 7), 0.25, seed)
        path = tmp_path_factory.mktemp("io") / "t.tns"
        from repro.tensor import load_tensor, save_tensor

        save_tensor(tensor, path)
        assert load_tensor(path) == tensor

    @given(st.integers(0, 999))
    @settings(max_examples=15, deadline=None)
    def test_factor_io_round_trip_property(self, tmp_path_factory, seed):
        from repro.bitops import BitMatrix
        from repro.tensor import load_matrix, save_matrix

        rng = np.random.default_rng(seed)
        matrix = BitMatrix.random(7, 4, 0.4, rng)
        path = tmp_path_factory.mktemp("io") / "m.mtx"
        save_matrix(matrix, path)
        assert load_matrix(path) == matrix


class TestEngineReplayInvariants:
    @given(st.integers(1, 32))
    @settings(max_examples=20, deadline=None)
    def test_simulated_time_monotone_in_machines(self, machines):
        from repro.distengine import SimulatedRuntime

        runtime = SimulatedRuntime()
        rdd = runtime.parallelize(list(range(64)), n_partitions=16)
        rdd.map(lambda x: x + 1)
        more = runtime.simulated_time(machines + 1)
        fewer = runtime.simulated_time(machines)
        # Compute makespan shrinks with machines; broadcast cost grows, but
        # there are no broadcasts in this run.
        assert more <= fewer + 1e-9
