"""Spill store unit tests and budgeted-factorization invariance tests.

The central contract of the storage tier: a factorization under a memory
budget produces bit-identical factors and error traces to an unbudgeted
run on every backend, tracked resident bytes never exceed the budget, and
a run with no budget pays zero storage overhead (no spans, no counters).
"""

import os

import numpy as np
import pytest

from repro.core import dbtf
from repro.distengine import ClusterConfig, SimulatedRuntime
from repro.storage import MemoryBudget, PartitionSpillStore, SpilledPartitions
from repro.tensor import planted_tensor

BUDGET_BYTES = 4096


class _FakeNode:
    """Minimal stand-in for a PlanNode: node_id plus a cached slot."""

    _next_id = 0

    def __init__(self, partitions):
        _FakeNode._next_id += 1
        self.node_id = _FakeNode._next_id
        self.cached = partitions


def _partitions(n_arrays: int, n_bytes_each: int):
    """Partition list whose default-measured size is n_arrays * n_bytes_each."""
    return [[np.zeros(n_bytes_each, dtype=np.uint8)] for _ in range(n_arrays)]


class TestPartitionSpillStore:
    @pytest.fixture
    def store(self, tmp_path):
        store = PartitionSpillStore(MemoryBudget(1000), spill_dir=str(tmp_path))
        yield store
        store.close()

    def test_admit_charges_budget(self, store):
        node = _FakeNode(_partitions(2, 100))
        store.admit(node)
        assert store.budget.resident_bytes == 200
        assert store.fetch(node) is node.cached
        assert not isinstance(node.cached, SpilledPartitions)

    def test_lru_eviction_spills_coldest(self, store):
        cold = _FakeNode(_partitions(1, 600))
        warm = _FakeNode(_partitions(1, 300))
        store.admit(cold)
        store.admit(warm)
        hot = _FakeNode(_partitions(1, 400))
        store.admit(hot)  # 600 + 300 + 400 > 1000: cold must go
        assert isinstance(cold.cached, SpilledPartitions)
        assert not isinstance(warm.cached, SpilledPartitions)
        assert not isinstance(hot.cached, SpilledPartitions)
        assert store.budget.resident_bytes == 700
        assert store.budget.spill_events == 1

    def test_marker_preserves_len_and_truthiness(self, store):
        node = _FakeNode(_partitions(3, 600))
        store.admit(node)
        store.admit(_FakeNode(_partitions(1, 900)))  # evicts node
        marker = node.cached
        assert isinstance(marker, SpilledPartitions)
        assert marker is not None and len(marker) == 3
        assert os.path.exists(marker.path)

    def test_fetch_reloads_spilled_entry_bit_identically(self, store):
        rng = np.random.default_rng(0)
        original = [[rng.integers(0, 256, 200, dtype=np.uint8)] for _ in range(2)]
        node = _FakeNode([list(p) for p in original])
        store.admit(node)
        store.admit(_FakeNode(_partitions(1, 900)))  # evicts node
        assert isinstance(node.cached, SpilledPartitions)
        loaded = store.fetch(node)
        assert store.budget.load_events == 1
        assert node.cached is loaded  # re-admitted resident
        for got, want in zip(loaded, original):
            assert np.array_equal(got[0], want[0])

    def test_reload_does_not_rewrite_file(self, store, tmp_path):
        node = _FakeNode(_partitions(1, 600))
        store.admit(node)
        evictor = _FakeNode(_partitions(1, 900))
        store.admit(evictor)
        path = node.cached.path
        mtime = os.path.getmtime(path)
        store.fetch(node)   # reload (evicts evictor — its first, real write)
        after_evictor_spill = store.budget.spilled_bytes
        store.fetch(evictor)  # reload evictor; node re-spills to existing file
        assert isinstance(node.cached, SpilledPartitions)
        assert os.path.getmtime(path) == mtime
        # Re-spill of an already-written file counts an event but no bytes.
        assert store.budget.spilled_bytes == after_evictor_spill
        assert store.budget.spill_events == 3

    def test_oversized_entry_never_resident(self, store):
        node = _FakeNode(_partitions(3, 500))  # 1500 > 1000 limit
        store.admit(node)
        assert isinstance(node.cached, SpilledPartitions)
        assert store.budget.resident_bytes == 0
        loaded = store.fetch(node)
        assert len(loaded) == 3
        # Still spilled: a fetch hands back a transient list, keeps marker.
        assert isinstance(node.cached, SpilledPartitions)

    def test_discard_frees_budget_and_file(self, store):
        node = _FakeNode(_partitions(1, 600))
        store.admit(node)
        store.admit(_FakeNode(_partitions(1, 900)))
        path = node.cached.path
        store.discard(node)
        assert node.cached is None
        assert not os.path.exists(path)
        resident = _FakeNode(_partitions(1, 100))
        store.admit(resident)
        before = store.budget.resident_bytes
        store.discard(resident)
        assert store.budget.resident_bytes == before - 100

    def test_fetch_none_cache_returns_none(self, store):
        node = _FakeNode(None)
        store.admit(node)  # no-op
        assert store.fetch(node) is None

    def test_close_removes_spill_directory(self, tmp_path):
        store = PartitionSpillStore(MemoryBudget(100), spill_dir=str(tmp_path))
        directory = store.directory
        store.admit(_FakeNode(_partitions(1, 600)))
        assert os.path.isdir(directory)
        store.close()
        assert not os.path.exists(directory)
        assert os.path.isdir(str(tmp_path))  # only the subdirectory is removed


def _run(backend: str, memory_budget: "int | None", tracing: bool = False):
    """Fixed-seed DBTF; returns (result, runtime) with the runtime closed."""
    tensor, _ = planted_tensor(
        (10, 10, 10), rank=2, factor_density=0.3,
        rng=np.random.default_rng(7),
    )
    runtime = SimulatedRuntime(
        ClusterConfig(n_machines=2, cores_per_machine=2, backend=backend,
                      memory_budget=memory_budget, tracing=tracing)
    )
    try:
        result = dbtf(tensor, rank=2, max_iterations=2, n_partitions=3,
                      seed=0, runtime=runtime)
        budget = runtime.storage.budget if runtime.storage is not None else None
        return result, runtime, budget
    finally:
        runtime.close()


class TestBudgetedFactorization:
    @pytest.fixture(scope="class")
    def baseline(self):
        result, _, _ = _run("serial", memory_budget=None)
        return result

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_bit_identical_under_budget(self, baseline, backend):
        result, runtime, budget = _run(backend, memory_budget=BUDGET_BYTES)
        assert budget.spill_events > 0, "budget too large to exercise spill"
        assert budget.peak_resident <= BUDGET_BYTES
        assert result.errors_per_iteration == baseline.errors_per_iteration
        for got, want in zip(result.factors, baseline.factors):
            assert np.array_equal(got.words, want.words)

    def test_spill_bytes_metered_not_networked(self, baseline):
        result, _, _ = _run("serial", memory_budget=BUDGET_BYTES)
        assert result.report.spill_bytes > 0
        assert baseline.report.spill_bytes == 0
        # Spill I/O must not inflate the shuffle/broadcast byte totals.
        # (The budget path routes unfoldings through the memmap store, so
        # its task payloads differ from the coordinate-shuffle path; the
        # wire charges for the data itself must still match exactly.)
        assert result.report.shuffle_bytes == baseline.report.shuffle_bytes
        assert result.report.broadcast_bytes == baseline.report.broadcast_bytes
        assert result.report.task_bytes <= baseline.report.task_bytes

    def test_spill_time_charged_at_disk_bandwidth(self):
        # simulated_time itself folds in host-measured task durations, so
        # only the spill component is comparable across runs.
        result, runtime, _ = _run("serial", memory_budget=BUDGET_BYTES)
        expected = (
            result.report.spill_bytes / ClusterConfig().disk_bytes_per_sec
        )
        assert expected > 0
        assert runtime.metrics.value(
            "simulated_spill_seconds", machines=2
        ) == pytest.approx(expected)


class TestDisabledPathUnchanged:
    """With memory_budget=None the storage tier must be invisible."""

    def test_no_store_constructed(self):
        _, runtime, budget = _run("serial", memory_budget=None)
        assert runtime.storage is None
        assert budget is None

    def test_no_storage_spans_or_counters(self):
        _, runtime, _ = _run("serial", memory_budget=None, tracing=True)
        kinds = {span.kind for span in runtime.tracer.spans}
        assert kinds == {"stage", "task", "kernel", "transfer"}
        metric_names = {row[0] for row in runtime.metrics.collect()}
        assert not any(name.startswith("storage_") for name in metric_names)
        assert "simulated_spill_seconds" not in metric_names

    def test_storage_spans_present_when_budgeted(self):
        _, runtime, _ = _run("serial", memory_budget=BUDGET_BYTES,
                             tracing=True)
        kinds = {span.kind for span in runtime.tracer.spans}
        assert "storage" in kinds
        ops = {
            span.attrs.get("op")
            for span in runtime.tracer.spans
            if span.kind == "storage"
        }
        assert ops == {"spill", "load"}
