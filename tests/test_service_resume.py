"""Kill-and-resubmit resume: bit-identical, across backends.

The service's durability contract: killing the service mid-run and
resubmitting the same specs against the same checkpoint root continues
every in-flight job from its newest snapshot and produces factors and
error traces identical to an uninterrupted run — under every backend,
because job ids (and thus checkpoint directories) are deterministic and
scheduling uses logical clocks only.
"""

import numpy as np
import pytest

from repro.distengine import DEFAULT_CLUSTER
from repro.service import FactorizationService, JobSpec, JobState, ServiceConfig
from repro.tensor import planted_tensor

BACKENDS = ["serial", "thread", "process"]


def make_tensor(seed=0, dim=10):
    tensor, _ = planted_tensor(
        (dim, dim, dim), rank=3, factor_density=0.3,
        rng=np.random.default_rng(seed),
    )
    return tensor


def make_specs(tensor):
    specs = [
        JobSpec(tenant=tenant, tensor=tensor, rank=3, max_iterations=4,
                seed=seed)
        for tenant in ("a", "b")
        for seed in range(2)
    ]
    specs.append(JobSpec(tenant="a", tensor=tensor, method="nway-cp", rank=3,
                         max_iterations=3, n_initial_sets=2))
    specs.append(JobSpec(tenant="b", tensor=tensor, method="tucker", rank=2,
                         max_iterations=2))
    return specs


def run_service(specs, root, backend, kill_after=None):
    """Run specs under one service; return results if drained, else None."""
    config = ServiceConfig(
        cluster=DEFAULT_CLUSTER.with_backend(backend, 2),
        checkpoint_root=root,
        max_live_jobs=3,
    )
    service = FactorizationService(config)
    try:
        for spec in specs:
            service.submit(spec)
        if kill_after is not None:
            for _ in range(kill_after):
                if not service.step():
                    break
            return None  # killed mid-run; close() in finally is the "crash"
        service.drain()
        return {
            job_id: service.result(job_id)
            for job_id, job in service.jobs.items()
            if job.state is JobState.DONE
        }
    finally:
        service.close()


def assert_same_results(interrupted, uninterrupted):
    assert set(interrupted) == set(uninterrupted)
    for job_id, result in uninterrupted.items():
        resumed = interrupted[job_id]
        assert resumed.error == result.error, job_id
        assert tuple(resumed.errors_per_iteration) == tuple(
            result.errors_per_iteration
        ), job_id
        for mine, theirs in zip(resumed.factors, result.factors):
            assert np.array_equal(mine.words, theirs.words), job_id


class TestKillAndResume:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_resume_is_bit_identical(self, tmp_path, backend):
        tensor = make_tensor()
        specs = make_specs(tensor)
        baseline = run_service(
            specs, tmp_path / "baseline", backend, kill_after=None
        )
        assert len(baseline) == len(specs)

        # Kill mid-run (several jobs in flight), then resubmit everything.
        root = tmp_path / "killed"
        assert run_service(specs, root, backend, kill_after=7) is None
        resumed = run_service(specs, root, backend, kill_after=None)
        assert_same_results(resumed, baseline)

    def test_resume_skips_completed_iterations(self, tmp_path):
        tensor = make_tensor()
        spec = JobSpec(tenant="a", tensor=tensor, rank=3, max_iterations=4)
        root = tmp_path / "spool"
        # First service: run to completion? No — kill after 3 quanta
        # (init + 2 iterations checkpointed).
        assert run_service([spec], root, "serial", kill_after=3) is None

        config = ServiceConfig(checkpoint_root=root)
        with FactorizationService(config) as service:
            job_id = service.submit(spec).job_id
            service.drain()
            job = service.jobs[job_id]
            result = service.result(job_id)
        # The resumed run replays fewer quanta than the full trace: the
        # completed iterations came from the snapshot, not recomputation.
        assert job.iterations < len(result.errors_per_iteration)

    def test_two_kills_still_bit_identical(self, tmp_path):
        tensor = make_tensor()
        specs = make_specs(tensor)
        baseline = run_service(specs, tmp_path / "base", "serial", None)
        root = tmp_path / "killed-twice"
        assert run_service(specs, root, "serial", kill_after=5) is None
        assert run_service(specs, root, "serial", kill_after=9) is None
        resumed = run_service(specs, root, "serial", None)
        assert_same_results(resumed, baseline)

    def test_backends_agree(self, tmp_path):
        tensor = make_tensor()
        specs = make_specs(tensor)
        results = {
            backend: run_service(specs, tmp_path / backend, backend, None)
            for backend in BACKENDS
        }
        assert_same_results(results["thread"], results["serial"])
        assert_same_results(results["process"], results["serial"])


class TestFairnessAtDrain:
    def test_schedule_identical_across_backends(self, tmp_path):
        tensor = make_tensor()
        specs = make_specs(tensor)
        vtimes = {}
        for backend in BACKENDS:
            config = ServiceConfig(
                cluster=DEFAULT_CLUSTER.with_backend(backend, 2),
                checkpoint_root=tmp_path / backend,
            )
            with FactorizationService(config) as service:
                for spec in specs:
                    service.submit(spec)
                service.drain()
                vtimes[backend] = service.scheduler.snapshot()
        assert vtimes["serial"] == vtimes["thread"] == vtimes["process"]
