"""Admission control and fair-share scheduling (no solvers involved)."""

import numpy as np
import pytest

from repro.service import (
    AdmissionError,
    FairShareScheduler,
    Job,
    JobQueue,
    JobSpec,
    TenantQuota,
)
from repro.tensor import SparseBoolTensor


def make_tensor(seed=0):
    rng = np.random.default_rng(seed)
    dense = rng.random((4, 4, 4)) < 0.3
    return SparseBoolTensor.from_dense(dense)


def make_job(tenant, seq, seed=0, priority=0):
    spec = JobSpec(tenant=tenant, tensor=make_tensor(), seed=seed,
                   priority=priority)
    return Job(spec, seq=seq)


class TestTenantQuota:
    def test_defaults(self):
        quota = TenantQuota()
        assert quota.max_pending >= 1
        assert quota.max_running >= 1
        assert quota.weight == 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_pending": 0},
            {"max_running": 0},
            {"weight": 0.0},
            {"weight": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            TenantQuota(**kwargs)


class TestJobQueue:
    def test_per_tenant_admission(self):
        queue = JobQueue(default_quota=TenantQuota(max_pending=2))
        queue.submit(make_job("a", 1, seed=1))
        queue.submit(make_job("a", 2, seed=2))
        with pytest.raises(AdmissionError):
            queue.submit(make_job("a", 3, seed=3))
        # Another tenant is unaffected by a's full backlog.
        queue.submit(make_job("b", 4, seed=4))
        assert queue.depth("a") == 2
        assert queue.depth("b") == 1

    def test_global_cap(self):
        queue = JobQueue(max_pending_total=2)
        queue.submit(make_job("a", 1, seed=1))
        queue.submit(make_job("b", 2, seed=2))
        with pytest.raises(AdmissionError):
            queue.submit(make_job("c", 3, seed=3))

    def test_quota_override_per_tenant(self):
        queue = JobQueue(
            default_quota=TenantQuota(max_pending=1),
            quotas={"vip": TenantQuota(max_pending=3)},
        )
        for seed in range(3):
            queue.submit(make_job("vip", seed + 1, seed=seed))
        with pytest.raises(AdmissionError):
            queue.submit(make_job("vip", 4, seed=3))
        queue.submit(make_job("other", 5, seed=0))
        with pytest.raises(AdmissionError):
            queue.submit(make_job("other", 6, seed=1))

    def test_priority_orders_within_tenant(self):
        queue = JobQueue()
        low = make_job("a", 1, seed=1, priority=0)
        high = make_job("a", 2, seed=2, priority=5)
        queue.submit(low)
        queue.submit(high)
        assert queue.head("a") is high
        assert queue.pop("a") is high
        assert queue.pop("a") is low

    def test_fifo_within_priority(self):
        queue = JobQueue()
        first = make_job("a", 1, seed=1)
        second = make_job("a", 2, seed=2)
        queue.submit(second)
        queue.submit(first)
        assert queue.pop("a") is first

    def test_requeue_bypasses_quota_and_keeps_place(self):
        queue = JobQueue(default_quota=TenantQuota(max_pending=1))
        preempted = make_job("a", 1, seed=1)
        waiting = make_job("a", 2, seed=2)
        queue.submit(waiting)
        # submit() would refuse (quota 1); requeue must not.
        queue.requeue(preempted)
        assert queue.depth("a") == 2
        # Original seq puts the preempted job back at the head.
        assert queue.pop("a") is preempted

    def test_remove(self):
        queue = JobQueue()
        job = make_job("a", 1)
        queue.submit(job)
        assert queue.remove(job) is True
        assert queue.remove(job) is False
        assert queue.depth("a") == 0

    def test_heads_sorted_by_tenant(self):
        queue = JobQueue()
        queue.submit(make_job("b", 1, seed=1))
        queue.submit(make_job("a", 2, seed=2))
        assert list(queue.heads()) == ["a", "b"]


class TestFairShareScheduler:
    def scheduler(self, weights=None):
        weights = weights or {}
        return FairShareScheduler(
            lambda tenant: TenantQuota(weight=weights.get(tenant, 1.0))
        )

    def test_equal_weights_round_robin(self):
        sched = self.scheduler()
        jobs = {t: make_job(t, i + 1) for i, t in enumerate("abc")}
        picked = []
        for _ in range(6):
            job = sched.pick(jobs)
            picked.append(job.tenant)
            sched.charge(job.tenant)
        assert picked == ["a", "b", "c", "a", "b", "c"]

    def test_weighted_share(self):
        sched = self.scheduler({"heavy": 2.0, "light": 1.0})
        jobs = {t: make_job(t, i + 1) for i, t in enumerate(["heavy", "light"])}
        counts = {"heavy": 0, "light": 0}
        for _ in range(30):
            job = sched.pick(jobs)
            counts[job.tenant] += 1
            sched.charge(job.tenant)
        assert counts["heavy"] == 2 * counts["light"]

    def test_late_joiner_lifted_to_floor(self):
        sched = self.scheduler()
        for _ in range(100):
            sched.charge("incumbent")
        job_new = make_job("newcomer", 1)
        job_old = make_job("incumbent", 2)
        picked = []
        for _ in range(4):
            job = sched.pick({"incumbent": job_old, "newcomer": job_new})
            picked.append(job.tenant)
            sched.charge(job.tenant)
        # The newcomer starts at the incumbent's vtime, not at zero — it
        # wins the first tie-broken quantum but cannot starve.
        assert picked.count("incumbent") >= 1
        assert picked.count("newcomer") >= 1

    def test_preference_priority_then_seq(self):
        jobs = [
            make_job("a", 3, seed=1, priority=0),
            make_job("a", 1, seed=2, priority=2),
            make_job("a", 2, seed=3, priority=2),
        ]
        best = FairShareScheduler.preference(jobs)
        assert best is jobs[1]

    def test_victim_requires_strictly_higher_priority(self):
        sched = self.scheduler()
        live = make_job("a", 1, priority=1)
        live.last_step = 2  # at a boundary with checkpoint_every=1
        candidate_equal = make_job("b", 2, seed=1, priority=1)
        candidate_higher = make_job("b", 3, seed=2, priority=2)
        assert sched.victim([live], candidate_equal) is None
        assert sched.victim([live], candidate_higher) is live

    def test_victim_only_at_checkpoint_boundary(self):
        sched = self.scheduler()
        live = make_job("a", 1, priority=0)
        live.checkpoint_every = 2
        live.last_step = 3  # mid-interval: not snapshotted
        candidate = make_job("b", 2, seed=1, priority=5)
        assert sched.victim([live], candidate) is None
        live.last_step = 4
        assert sched.victim([live], candidate) is live

    def test_deterministic_tie_break(self):
        sched_one = self.scheduler()
        sched_two = self.scheduler()
        jobs = {t: make_job(t, i + 1) for i, t in enumerate("ba")}
        assert sched_one.pick(jobs).tenant == sched_two.pick(jobs).tenant == "a"
