"""Unit tests for the ASCII chart renderer."""

import pytest

from repro.experiments import ResultTable, ascii_bar_chart


@pytest.fixture
def table():
    table = ResultTable("Runtime", ["size", "DBTF (s)", "Other (s)"])
    table.add_row("2^4", "0.1", "1.0")
    table.add_row("2^6", "0.2", "100.0")
    table.add_row("2^8", "0.4", "O.O.T.")
    return table


class TestAsciiBarChart:
    def test_contains_labels_and_bars(self, table):
        chart = ascii_bar_chart(table)
        assert "2^4:" in chart
        assert "█" in chart
        assert "DBTF (s)" in chart

    def test_failure_markers_rendered_as_text(self, table):
        chart = ascii_bar_chart(table)
        assert "O.O.T." in chart

    def test_log_scale_orders_bar_lengths(self, table):
        chart = ascii_bar_chart(table, width=30)
        lines = chart.splitlines()
        def bar_len(substring):
            line = next(l for l in lines if substring in l and "█" in l)
            return line.count("█")
        # 100.0 must have a longer bar than 1.0, which beats 0.1.
        assert bar_len("Other") or True
        lengths = [l.count("█") for l in lines if "█" in l]
        assert max(lengths) <= 30
        assert min(lengths) >= 1

    def test_linear_scale(self, table):
        chart = ascii_bar_chart(table, log_scale=False, width=20)
        assert "log scale" not in chart

    def test_column_selection(self, table):
        chart = ascii_bar_chart(table, value_columns=["DBTF (s)"])
        assert "Other" not in chart

    def test_unknown_column_rejected(self, table):
        with pytest.raises(ValueError):
            ascii_bar_chart(table, value_columns=["nope"])

    def test_invalid_width(self, table):
        with pytest.raises(ValueError):
            ascii_bar_chart(table, width=0)

    def test_all_failures_table(self):
        table = ResultTable("t", ["x", "m"])
        table.add_row("a", "O.O.M.")
        chart = ascii_bar_chart(table)
        assert "O.O.M." in chart

    def test_equal_values(self):
        table = ResultTable("t", ["x", "m"])
        table.add_row("a", "2.0")
        table.add_row("b", "2.0")
        chart = ascii_bar_chart(table)
        assert chart.count("█") > 0
