"""Additional runtime/cost-model tests (driver latency, report coherence)."""

import pytest

from repro.distengine import ClusterConfig, SimulatedRuntime


class TestDriverLatency:
    def test_driver_latency_is_machine_independent(self):
        config = ClusterConfig(
            n_machines=4, cores_per_machine=1,
            task_launch_overhead_sec=0.0, driver_latency_sec=1.0,
        )
        runtime = SimulatedRuntime(config)
        rdd = runtime.parallelize([1, 2, 3, 4], n_partitions=4)
        rdd.map(lambda x: x).count()
        # One stage: both machine counts pay the same 1 s driver latency.
        difference = runtime.simulated_time(1) - runtime.simulated_time(100)
        assert difference < 1.0  # only the (tiny) compute part shrank

    def test_driver_latency_counts_per_stage(self):
        # Eager mode: each transformation dispatches its own stage (fusion
        # would collapse the chain into a single 0.5 s round-trip).
        config = ClusterConfig(
            n_machines=1, cores_per_machine=1,
            task_launch_overhead_sec=0.0, driver_latency_sec=0.5, eager=True,
        )
        runtime = SimulatedRuntime(config)
        rdd = runtime.parallelize([1], n_partitions=1)
        rdd = rdd.map(lambda x: x).map(lambda x: x).map(lambda x: x)
        assert runtime.simulated_time(1) >= 1.5  # three stages x 0.5 s

    def test_fusion_pays_driver_latency_once(self):
        # The lazy planner's point: the same chain costs one round-trip.
        config = ClusterConfig(
            n_machines=1, cores_per_machine=1,
            task_launch_overhead_sec=0.0, driver_latency_sec=0.5,
        )
        runtime = SimulatedRuntime(config)
        rdd = runtime.parallelize([1], n_partitions=1)
        rdd.map(lambda x: x).map(lambda x: x).map(lambda x: x).count()
        assert len(runtime.stages) == 1
        assert 0.5 <= runtime.simulated_time(1) < 1.0

    def test_empty_stage_costs_nothing(self):
        runtime = SimulatedRuntime()
        runtime.record_stage("empty", [])
        assert runtime.simulated_time(4) == 0.0


class TestSpeedupShape:
    def test_speedup_saturates_with_driver_latency(self):
        # With a serial driver fraction, speed-up must flatten — the
        # Figure 7 shape the cost model exists to reproduce.
        config = ClusterConfig(
            n_machines=16, cores_per_machine=1,
            task_launch_overhead_sec=0.0, driver_latency_sec=0.05,
        )
        runtime = SimulatedRuntime(config)
        rdd = runtime.parallelize(list(range(64)), n_partitions=64)
        rdd.map(lambda x: sum(range(3000))).count()
        t1 = runtime.simulated_time(1)
        t4 = runtime.simulated_time(4)
        t64 = runtime.simulated_time(64)
        speedup_4 = t1 / t4
        speedup_64 = t1 / t64
        assert speedup_4 <= 4.0 + 1e-6
        assert speedup_64 < 64.0  # strictly sublinear
        # Diminishing returns: 64 machines give < 16x the 4-machine gain.
        assert speedup_64 / speedup_4 < 16.0

    def test_report_simulated_time_matches_method(self):
        runtime = SimulatedRuntime()
        rdd = runtime.parallelize([1, 2], n_partitions=2)
        rdd.map(lambda x: x).count()
        report = runtime.report(8)
        assert report.simulated_time == pytest.approx(runtime.simulated_time(8))


class TestResetRegression:
    """``reset()`` must leave no residue in any accounting channel.

    Regression for the network-bytes double-count class of bug: a
    broadcast-heavy workload run, reset, and re-run on the *same* runtime
    must report exactly the bytes of one run — ``_broadcast_base_bytes``,
    the ledger, the metrics registry, and the tracer all start over.
    """

    def _workload(self, runtime):
        runtime.broadcast([1] * 100, name="factors")
        rdd = runtime.parallelize(list(range(12)), n_partitions=3)
        return rdd.map(lambda x: x + 1).collect(name="gather")

    def test_network_bytes_not_double_counted_after_reset(self):
        runtime = SimulatedRuntime(ClusterConfig(tracing=True))
        self._workload(runtime)
        first = runtime.report()
        runtime.reset()
        self._workload(runtime)
        second = runtime.report()
        assert second.network_bytes == first.network_bytes
        assert second.shuffle_bytes == first.shuffle_bytes
        assert second.broadcast_bytes == first.broadcast_bytes
        assert second.collect_bytes == first.collect_bytes
        assert second.n_stages == first.n_stages

    def test_reset_clears_metrics_and_trace(self):
        runtime = SimulatedRuntime(ClusterConfig(tracing=True))
        self._workload(runtime)
        assert runtime.metrics.value("stages_total") == 1.0
        assert len(runtime.tracer) > 0
        runtime.reset()
        assert len(runtime.metrics) == 0
        assert len(runtime.tracer) == 0
        self._workload(runtime)
        assert runtime.metrics.value("stages_total") == 1.0

    def test_transfer_counter_matches_ledger_after_reset(self):
        runtime = SimulatedRuntime(ClusterConfig(tracing=True))
        self._workload(runtime)
        runtime.reset()
        self._workload(runtime)
        report = runtime.report()
        counted = sum(
            value
            for _labels, value in runtime.metrics.counters()
            .get("transfer_bytes_total", {})
            .items()
        )
        # Broadcast bytes in the report are per-machine; the ledger (and
        # the counter) store the single-copy base bytes.
        base_network = (
            report.shuffle_bytes
            + report.collect_bytes
            + report.task_bytes
            + report.broadcast_bytes // report.n_machines
        )
        assert counted == base_network
