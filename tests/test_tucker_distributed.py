"""Tests for distributed Boolean Tucker (engine-backed factor updates)."""

import numpy as np
import pytest

from repro.bitops import BitMatrix
from repro.distengine import SimulatedRuntime, TransferKind
from repro.tensor import SparseBoolTensor
from repro.tucker import BooleanTuckerConfig, boolean_tucker, dbtf_tucker
from repro.tucker.decompose import _reconstruct_dense


def planted_tucker(shape, core_shape, factor_density, core_density, seed):
    rng = np.random.default_rng(seed)
    factors = tuple(
        (rng.random((dimension, rank)) < factor_density).astype(np.uint8)
        for dimension, rank in zip(shape, core_shape)
    )
    core = (rng.random(core_shape) < core_density).astype(np.uint8)
    dense = _reconstruct_dense(core, factors)
    return SparseBoolTensor.from_dense(dense)


class TestDbtfTucker:
    def test_matches_single_machine_solver(self):
        # Same greedy updates, same initialization stream: the distributed
        # and dense solvers must produce identical decompositions.
        tensor = planted_tucker((14, 12, 10), (2, 3, 2), 0.3, 0.5, seed=0)
        config = BooleanTuckerConfig(core_shape=(2, 3, 2), seed=3)
        dense_result = boolean_tucker(tensor, config=config)
        distributed_result = dbtf_tucker(tensor, config=config, n_partitions=4)
        assert distributed_result.error == dense_result.error
        assert distributed_result.factors == dense_result.factors
        assert distributed_result.core == dense_result.core

    @pytest.mark.parametrize("n_partitions", [1, 3, 7])
    def test_partition_invariance(self, n_partitions):
        tensor = planted_tucker((10, 10, 10), (2, 2, 2), 0.35, 0.5, seed=1)
        config = BooleanTuckerConfig(core_shape=(2, 2, 2), seed=0)
        baseline = dbtf_tucker(tensor, config=config, n_partitions=1)
        other = dbtf_tucker(tensor, config=config, n_partitions=n_partitions)
        assert other.error == baseline.error
        assert other.factors == baseline.factors

    def test_group_split_invariance(self):
        tensor = planted_tucker((10, 10, 10), (4, 4, 4), 0.3, 0.4, seed=2)
        config = BooleanTuckerConfig(core_shape=(4, 4, 4), seed=0,
                                     max_iterations=2)
        full = dbtf_tucker(tensor, config=config, cache_group_size=15)
        split = dbtf_tucker(tensor, config=config, cache_group_size=2)
        assert full.error == split.error
        assert full.factors == split.factors

    def test_error_matches_reconstruction(self):
        tensor = planted_tucker((12, 12, 12), (2, 2, 2), 0.3, 0.6, seed=3)
        result = dbtf_tucker(tensor, core_shape=(2, 2, 2), n_partitions=3)
        assert result.error == tensor.hamming_distance(result.reconstruct())

    def test_recovers_planted_structure(self):
        tensor = planted_tucker((20, 20, 20), (3, 3, 3), 0.25, 0.4, seed=4)
        config = BooleanTuckerConfig(core_shape=(3, 3, 3), n_initial_sets=4)
        result = dbtf_tucker(tensor, config=config, n_partitions=4)
        assert result.relative_error < 0.4

    def test_engine_accounting(self):
        tensor = planted_tucker((10, 10, 10), (2, 2, 2), 0.3, 0.5, seed=5)
        runtime = SimulatedRuntime()
        dbtf_tucker(tensor, core_shape=(2, 2, 2), n_partitions=4,
                    runtime=runtime)
        assert runtime.ledger.bytes_of_kind(TransferKind.SHUFFLE) > 0
        assert runtime.ledger.bytes_of_kind(TransferKind.BROADCAST) > 0
        assert any(
            stage.name.startswith("cacheTuckerSummations")
            for stage in runtime.stages
        )
        assert runtime.simulated_time(16) > 0

    def test_empty_tensor(self):
        result = dbtf_tucker(
            SparseBoolTensor.empty((5, 5, 5)), core_shape=(2, 2, 2),
            n_partitions=2,
        )
        assert result.error == 0

    def test_non_three_way_rejected(self):
        with pytest.raises(ValueError):
            dbtf_tucker(SparseBoolTensor.empty((2, 2)), core_shape=(1, 1, 1))

    def test_core_shape_or_config_required(self):
        with pytest.raises(ValueError):
            dbtf_tucker(SparseBoolTensor.empty((2, 2, 2)))

    def test_invalid_partitions(self):
        with pytest.raises(ValueError):
            dbtf_tucker(
                SparseBoolTensor.empty((2, 2, 2)), core_shape=(1, 1, 1),
                n_partitions=0,
            )
