"""Shared pytest configuration.

Adds ``--update-goldens``: golden-fixture tests (see
``test_observability_golden.py``) rewrite their checked-in snapshots
instead of comparing against them.  Run it after an intentional change to
the trace structure::

    PYTHONPATH=src python -m pytest tests/test_observability_golden.py \
        --update-goldens
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite golden fixtures from the current run instead of "
             "comparing against them",
    )


@pytest.fixture
def update_goldens(request) -> bool:
    return request.config.getoption("--update-goldens")
