"""Unit tests for random tensor/factor generation and the noise models."""

import numpy as np
import pytest

from repro.tensor import (
    add_additive_noise,
    add_destructive_noise,
    planted_tensor,
    random_factors,
    random_tensor,
    tensor_from_factors,
)


class TestRandomTensor:
    def test_density_is_exact(self):
        rng = np.random.default_rng(0)
        tensor = random_tensor((10, 10, 10), density=0.05, rng=rng)
        assert tensor.nnz == 50

    def test_zero_density(self):
        rng = np.random.default_rng(0)
        assert random_tensor((4, 4, 4), density=0.0, rng=rng).nnz == 0

    def test_full_density(self):
        rng = np.random.default_rng(0)
        assert random_tensor((3, 3, 3), density=1.0, rng=rng).nnz == 27

    def test_invalid_density(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            random_tensor((2, 2, 2), density=-0.1, rng=rng)

    def test_deterministic_given_seed(self):
        first = random_tensor((5, 5, 5), 0.2, np.random.default_rng(7))
        second = random_tensor((5, 5, 5), 0.2, np.random.default_rng(7))
        assert first == second


class TestRandomFactors:
    def test_shapes(self):
        rng = np.random.default_rng(1)
        a, b, c = random_factors((4, 5, 6), rank=3, density=0.5, rng=rng)
        assert a.shape == (4, 3)
        assert b.shape == (5, 3)
        assert c.shape == (6, 3)

    def test_invalid_rank(self):
        rng = np.random.default_rng(1)
        with pytest.raises(ValueError):
            random_factors((2, 2, 2), rank=0, density=0.5, rng=rng)


class TestAdditiveNoise:
    def test_adds_expected_count(self):
        rng = np.random.default_rng(2)
        tensor = random_tensor((10, 10, 10), density=0.1, rng=rng)
        noisy = add_additive_noise(tensor, 0.10, rng)
        assert noisy.nnz == tensor.nnz + round(0.10 * tensor.nnz)

    def test_original_entries_preserved(self):
        rng = np.random.default_rng(3)
        tensor = random_tensor((8, 8, 8), density=0.1, rng=rng)
        noisy = add_additive_noise(tensor, 0.2, rng)
        assert tensor.minus(noisy).nnz == 0

    def test_zero_level_is_copy(self):
        rng = np.random.default_rng(4)
        tensor = random_tensor((4, 4, 4), density=0.2, rng=rng)
        noisy = add_additive_noise(tensor, 0.0, rng)
        assert noisy == tensor
        assert noisy is not tensor

    def test_negative_level_rejected(self):
        rng = np.random.default_rng(4)
        tensor = random_tensor((4, 4, 4), 0.2, rng)
        with pytest.raises(ValueError):
            add_additive_noise(tensor, -0.1, rng)

    def test_overfull_rejected(self):
        rng = np.random.default_rng(5)
        tensor = random_tensor((3, 3, 3), density=1.0, rng=rng)
        with pytest.raises(ValueError):
            add_additive_noise(tensor, 0.5, rng)

    def test_reference_nnz_override(self):
        rng = np.random.default_rng(6)
        tensor = random_tensor((10, 10, 10), density=0.05, rng=rng)
        noisy = add_additive_noise(tensor, 0.1, rng, reference_nnz=100)
        assert noisy.nnz == tensor.nnz + 10


class TestDestructiveNoise:
    def test_removes_expected_count(self):
        rng = np.random.default_rng(7)
        tensor = random_tensor((10, 10, 10), density=0.1, rng=rng)
        noisy = add_destructive_noise(tensor, 0.05, rng)
        assert noisy.nnz == tensor.nnz - round(0.05 * tensor.nnz)

    def test_no_new_entries(self):
        rng = np.random.default_rng(8)
        tensor = random_tensor((8, 8, 8), density=0.1, rng=rng)
        noisy = add_destructive_noise(tensor, 0.3, rng)
        assert noisy.minus(tensor).nnz == 0

    def test_level_capped_at_all_entries(self):
        rng = np.random.default_rng(9)
        tensor = random_tensor((3, 3, 3), density=0.5, rng=rng)
        noisy = add_destructive_noise(tensor, 5.0, rng)
        assert noisy.nnz == 0

    def test_negative_level_rejected(self):
        rng = np.random.default_rng(9)
        tensor = random_tensor((3, 3, 3), 0.5, rng)
        with pytest.raises(ValueError):
            add_destructive_noise(tensor, -0.1, rng)


class TestPlantedTensor:
    def test_noise_free_matches_factors(self):
        rng = np.random.default_rng(10)
        tensor, factors = planted_tensor((8, 8, 8), rank=3, factor_density=0.3, rng=rng)
        assert tensor == tensor_from_factors(factors)

    def test_additive_noise_grows_tensor(self):
        rng = np.random.default_rng(11)
        noisy, factors = planted_tensor(
            (10, 10, 10), rank=3, factor_density=0.3, rng=rng, additive_noise=0.1
        )
        clean = tensor_from_factors(factors)
        assert noisy.nnz == clean.nnz + round(0.1 * clean.nnz)

    def test_destructive_noise_shrinks_tensor(self):
        rng = np.random.default_rng(12)
        noisy, factors = planted_tensor(
            (10, 10, 10), rank=3, factor_density=0.3, rng=rng, destructive_noise=0.1
        )
        clean = tensor_from_factors(factors)
        assert noisy.nnz == clean.nnz - round(0.1 * clean.nnz)
