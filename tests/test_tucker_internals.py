"""Unit tests for Boolean Tucker solver internals."""

import numpy as np
import pytest

from repro.tucker.decompose import (
    _coverage_slabs,
    _reconstruct_dense,
    _update_core,
    _update_factor_dense,
)


class TestCoverageSlabs:
    def test_matches_definition(self):
        rng = np.random.default_rng(0)
        core = (rng.random((2, 3, 2)) < 0.5).astype(np.uint8)
        second = (rng.random((5, 3)) < 0.5).astype(np.uint8)
        third = (rng.random((4, 2)) < 0.5).astype(np.uint8)
        slabs = _coverage_slabs(core, second, third)
        assert slabs.shape == (2, 5, 4)
        for p in range(2):
            for j in range(5):
                for k in range(4):
                    expected = any(
                        core[p, q, r] and second[j, q] and third[k, r]
                        for q in range(3)
                        for r in range(2)
                    )
                    assert bool(slabs[p, j, k]) == expected

    def test_empty_core_gives_empty_slabs(self):
        core = np.zeros((2, 2, 2), dtype=np.uint8)
        second = np.ones((3, 2), dtype=np.uint8)
        third = np.ones((3, 2), dtype=np.uint8)
        assert not _coverage_slabs(core, second, third).any()


class TestUpdateFactorDense:
    def test_chooses_exact_row_argmin(self):
        rng = np.random.default_rng(1)
        core = np.ones((1, 1, 1), dtype=np.uint8)
        b = (rng.random((4, 1)) < 0.6).astype(np.uint8)
        c = (rng.random((4, 1)) < 0.6).astype(np.uint8)
        a_true = (rng.random((4, 1)) < 0.6).astype(np.uint8)
        dense = _reconstruct_dense(core, (a_true, b, c))
        slabs = _coverage_slabs(core, b, c)
        start = np.zeros((4, 1), dtype=np.uint8)
        updated, error = _update_factor_dense(
            dense.reshape(4, -1), start, slabs.reshape(1, -1)
        )
        # With the true B, C and core, the exact A is recoverable whenever
        # its covered slab is nonempty.
        if slabs.any():
            np.testing.assert_array_equal(updated, a_true)
            assert error == 0

    def test_error_is_true_reconstruction_error(self):
        rng = np.random.default_rng(2)
        core = (rng.random((2, 2, 2)) < 0.6).astype(np.uint8)
        a = (rng.random((5, 2)) < 0.5).astype(np.uint8)
        b = (rng.random((5, 2)) < 0.5).astype(np.uint8)
        c = (rng.random((5, 2)) < 0.5).astype(np.uint8)
        dense = _reconstruct_dense(core, (a, b, c))
        slabs = _coverage_slabs(core, b, c)
        start = (rng.random((5, 2)) < 0.5).astype(np.uint8)
        updated, error = _update_factor_dense(
            dense.reshape(5, -1), start, slabs.reshape(2, -1)
        )
        reconstructed = _reconstruct_dense(core, (updated, b, c))
        assert error == int((reconstructed != dense).sum())


class TestUpdateCore:
    def test_keeps_beneficial_entries(self):
        rng = np.random.default_rng(3)
        a = (rng.random((6, 2)) < 0.5).astype(np.uint8)
        b = (rng.random((6, 2)) < 0.5).astype(np.uint8)
        c = (rng.random((6, 2)) < 0.5).astype(np.uint8)
        true_core = np.array(
            [[[1, 0], [0, 1]], [[0, 0], [1, 0]]], dtype=np.uint8
        )
        dense = _reconstruct_dense(true_core, (a, b, c))
        updated, error = _update_core(dense, np.zeros((2, 2, 2), np.uint8),
                                      (a, b, c))
        reconstructed = _reconstruct_dense(updated, (a, b, c))
        assert error == int((reconstructed != dense).sum())
        # Greedy from the empty core can only add beneficial entries.
        assert error <= int(dense.sum())

    def test_drops_harmful_entries(self):
        a = np.ones((4, 1), dtype=np.uint8)
        b = np.ones((4, 1), dtype=np.uint8)
        c = np.ones((4, 1), dtype=np.uint8)
        dense = np.zeros((4, 4, 4), dtype=np.uint8)  # empty tensor
        start = np.ones((1, 1, 1), dtype=np.uint8)
        updated, error = _update_core(dense, start, (a, b, c))
        assert updated.sum() == 0
        assert error == 0

    def test_exact_core_is_stable(self):
        rng = np.random.default_rng(4)
        a = (rng.random((6, 2)) < 0.5).astype(np.uint8)
        b = (rng.random((6, 2)) < 0.5).astype(np.uint8)
        c = (rng.random((6, 2)) < 0.5).astype(np.uint8)
        core = (rng.random((2, 2, 2)) < 0.6).astype(np.uint8)
        dense = _reconstruct_dense(core, (a, b, c))
        updated, error = _update_core(dense, core.copy(), (a, b, c))
        reconstructed = _reconstruct_dense(updated, (a, b, c))
        # The update may swap redundant entries but never worsen the fit.
        assert error == int((reconstructed != dense).sum())
        assert error == 0
