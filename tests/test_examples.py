"""Smoke tests: every example script must run to completion.

Examples are the library's advertised entry points; these tests import each
one and execute its ``main()`` so a refactor cannot silently break them.
``reproduce_paper.py`` is exercised separately (its quick mode still takes
minutes) and is only checked for argument parsing here.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

RUNNABLE = [
    "quickstart",
    "temporal_communities",
    "network_intrusion",
    "knowledge_base_concepts",
    "rank_selection",
    "multiway_logs",
    "custom_data",
    "resume_after_kill",
    "streaming_ingest",
]


def load_example(name):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.slow
@pytest.mark.parametrize("name", RUNNABLE)
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{name} produced no output"


def test_reproduce_paper_parses_arguments():
    module = load_example("reproduce_paper")
    # --help must exit cleanly; the full run is exercised by the harness.
    with pytest.raises(SystemExit) as excinfo:
        module.main(["--help"])
    assert excinfo.value.code == 0


def test_examples_directory_complete():
    present = {path.stem for path in EXAMPLES_DIR.glob("*.py")}
    assert set(RUNNABLE) <= present
    assert "reproduce_paper" in present