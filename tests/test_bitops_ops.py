"""Unit tests for Boolean linear-algebra operations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitops import (
    BitMatrix,
    boolean_matmul,
    khatri_rao,
    or_accumulate_table,
    packing,
    pointwise_vector_matrix,
)


def random_dense(n_rows, n_cols, seed, density=0.5):
    rng = np.random.default_rng(seed)
    return (rng.random((n_rows, n_cols)) < density).astype(np.uint8)


def dense_boolean_matmul(left, right):
    return ((left.astype(np.int32) @ right.astype(np.int32)) > 0).astype(np.uint8)


class TestBooleanMatmul:
    def test_small_example(self):
        left = BitMatrix.from_dense(np.array([[1, 0], [1, 1]], dtype=np.uint8))
        right = BitMatrix.from_dense(np.array([[0, 1, 0], [1, 1, 0]], dtype=np.uint8))
        result = boolean_matmul(left, right)
        np.testing.assert_array_equal(
            result.to_dense(), [[0, 1, 0], [1, 1, 0]]
        )

    def test_boolean_not_integer_sum(self):
        # Two overlapping contributions must still give 1 (1 + 1 = 1).
        left = BitMatrix.from_dense(np.array([[1, 1]], dtype=np.uint8))
        right = BitMatrix.from_dense(np.array([[1], [1]], dtype=np.uint8))
        assert boolean_matmul(left, right).to_dense()[0, 0] == 1

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            boolean_matmul(BitMatrix.zeros(2, 3), BitMatrix.zeros(4, 2))

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_dense_reference(self, seed):
        left_dense = random_dense(7, 9, seed, density=0.3)
        right_dense = random_dense(9, 11, seed + 100, density=0.3)
        result = boolean_matmul(
            BitMatrix.from_dense(left_dense), BitMatrix.from_dense(right_dense)
        )
        np.testing.assert_array_equal(
            result.to_dense(), dense_boolean_matmul(left_dense, right_dense)
        )

    def test_identity_is_neutral(self):
        dense = random_dense(6, 6, seed=42)
        matrix = BitMatrix.from_dense(dense)
        assert boolean_matmul(BitMatrix.identity(6), matrix) == matrix

    @given(st.integers(1, 8), st.integers(1, 8), st.integers(1, 8), st.integers(0, 999))
    @settings(max_examples=40, deadline=None)
    def test_matmul_property(self, m, k, n, seed):
        left_dense = random_dense(m, k, seed)
        right_dense = random_dense(k, n, seed + 1)
        result = boolean_matmul(
            BitMatrix.from_dense(left_dense), BitMatrix.from_dense(right_dense)
        )
        np.testing.assert_array_equal(
            result.to_dense(), dense_boolean_matmul(left_dense, right_dense)
        )


class TestKhatriRao:
    def test_shape(self):
        left = BitMatrix.from_dense(random_dense(3, 4, seed=1))
        right = BitMatrix.from_dense(random_dense(5, 4, seed=2))
        assert khatri_rao(left, right).shape == (15, 4)

    def test_column_count_mismatch(self):
        with pytest.raises(ValueError):
            khatri_rao(BitMatrix.zeros(2, 3), BitMatrix.zeros(2, 4))

    def test_matches_definition(self):
        # Column r must be the Kronecker product of the two r-th columns.
        left_dense = random_dense(3, 2, seed=3)
        right_dense = random_dense(4, 2, seed=4)
        product = khatri_rao(
            BitMatrix.from_dense(left_dense), BitMatrix.from_dense(right_dense)
        ).to_dense()
        for r in range(2):
            expected = np.kron(left_dense[:, r], right_dense[:, r])
            np.testing.assert_array_equal(product[:, r], expected)

    def test_row_layout_matches_unfolding(self):
        # Row (p, q) must land at flat index p * Q + q, matching Eq. (1).
        left = BitMatrix.from_dense(np.array([[0], [1]], dtype=np.uint8))
        right = BitMatrix.from_dense(np.array([[1], [0], [0]], dtype=np.uint8))
        product = khatri_rao(left, right).to_dense()
        # p=1, q=0 -> flat row 1*3+0 = 3
        np.testing.assert_array_equal(product.ravel(), [0, 0, 0, 1, 0, 0])


class TestPointwiseVectorMatrix:
    def test_keeps_and_zeroes_columns(self):
        matrix = BitMatrix.from_dense(random_dense(4, 3, seed=5))
        result = pointwise_vector_matrix(np.array([1, 0, 1]), matrix)
        expected = matrix.to_dense().copy()
        expected[:, 1] = 0
        np.testing.assert_array_equal(result.to_dense(), expected)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            pointwise_vector_matrix(np.array([1, 0]), BitMatrix.zeros(4, 3))

    def test_khatri_rao_decomposes_into_pvm_blocks(self):
        # (C ⊙ B)^T = [(c_1: ∗ B)^T ... (c_K: ∗ B)^T] — paper Sec. III-C.
        c_dense = random_dense(3, 4, seed=6)
        b_dense = random_dense(5, 4, seed=7)
        c_matrix = BitMatrix.from_dense(c_dense)
        b_matrix = BitMatrix.from_dense(b_dense)
        full = khatri_rao(c_matrix, b_matrix).to_dense().T  # R x (K*J)
        for k in range(3):
            block = pointwise_vector_matrix(c_dense[k], b_matrix).to_dense().T
            np.testing.assert_array_equal(full[:, k * 5 : (k + 1) * 5], block)


class TestOrAccumulateTable:
    def test_empty(self):
        table = or_accumulate_table(np.zeros((0, 2), dtype=np.uint64), 0)
        assert table.shape == (1, 2)
        assert table.sum() == 0

    def test_all_subsets(self):
        dense = random_dense(3, 40, seed=8)
        packed = packing.pack_bits(dense)
        table = or_accumulate_table(packed, 3)
        assert table.shape == (8, packed.shape[1])
        for mask in range(8):
            selected = [b for b in range(3) if mask & (1 << b)]
            expected = (
                (dense[selected].sum(axis=0) > 0).astype(np.uint8)
                if selected
                else np.zeros(40, dtype=np.uint8)
            )
            np.testing.assert_array_equal(
                packing.unpack_bits(table[mask], 40), expected
            )

    def test_too_few_rows_rejected(self):
        with pytest.raises(ValueError):
            or_accumulate_table(np.zeros((1, 1), dtype=np.uint64), 2)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            or_accumulate_table(np.zeros((1, 1), dtype=np.uint64), -1)

    @given(st.integers(0, 6), st.integers(1, 100), st.integers(0, 999))
    @settings(max_examples=30, deadline=None)
    def test_table_entry_property(self, n_columns, width, seed):
        dense = random_dense(max(n_columns, 1), width, seed)
        packed = packing.pack_bits(dense)
        table = or_accumulate_table(packed, n_columns)
        rng = np.random.default_rng(seed)
        mask = int(rng.integers(0, 1 << n_columns))
        selected = [b for b in range(n_columns) if mask & (1 << b)]
        expected = np.zeros(width, dtype=np.uint8)
        if selected:
            expected = (dense[selected].sum(axis=0) > 0).astype(np.uint8)
        np.testing.assert_array_equal(packing.unpack_bits(table[mask], width), expected)
