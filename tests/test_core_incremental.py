"""Delta patching of partitioned unfoldings and warm-start bookkeeping.

The load-bearing invariant: patching the cached partitions with a delta
must produce bit-identical packed blocks to rebuilding the partitions from
the delta'd tensor — on the default coordinate-shuffle path and on the
budgeted memmap path alike.  On top of that, the two driver-side warm-start
helpers must be exact: the baseline error formula against a full Hamming
recount, and the dirty-column criterion against brute-force per-column
decision comparison.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    PartitionedUnfoldings,
    baseline_error_after_delta,
    dirty_columns_for_delta,
    update_factor,
)
from repro.core.config import DbtfConfig
from repro.distengine import ClusterConfig, SimulatedRuntime
from repro.tensor import (
    SparseBoolTensor,
    TensorDelta,
    planted_tensor,
    random_factors,
    tensor_from_factors,
)

SHAPE = (7, 6, 5)


def _random_tensor(seed, shape=SHAPE, density=0.25):
    rng = np.random.default_rng(seed)
    return SparseBoolTensor.from_dense(
        (rng.random(shape) < density).astype(np.uint8)
    )


def _random_delta(tensor, seed, n_adds=4, n_removes=4):
    rng = np.random.default_rng(seed)
    coords = tensor.coords
    n_removes = min(n_removes, len(coords))
    removed = (
        coords[rng.choice(len(coords), size=n_removes, replace=False)]
        if n_removes
        else np.empty((0, 3), dtype=np.int64)
    )
    present = {tuple(int(x) for x in cell) for cell in coords}
    added = []
    while len(added) < n_adds:
        cell = tuple(int(rng.integers(0, dim)) for dim in tensor.shape)
        if cell not in present:
            present.add(cell)
            added.append(cell)
    return TensorDelta.from_coords(
        tensor.shape, np.array(added, dtype=np.int64), removed
    )


def _materialize(unfoldings):
    """Every partition's packed block words, per mode."""
    return [
        [
            [np.asarray(words).copy() for words in data.block_words]
            for data in rdd.collect()
        ]
        for rdd in unfoldings.rdds
    ]


def _assert_blocks_equal(got, want):
    assert len(got) == len(want)
    for got_mode, want_mode in zip(got, want):
        assert len(got_mode) == len(want_mode)
        for got_parts, want_parts in zip(got_mode, want_mode):
            assert len(got_parts) == len(want_parts)
            for got_words, want_words in zip(got_parts, want_parts):
                np.testing.assert_array_equal(got_words, want_words)


def _patched_vs_rebuilt(tensor, deltas, n_partitions=3, memory_budget=None):
    """Patch through ``deltas`` and compare against a rebuild per epoch."""
    cluster = ClusterConfig(
        n_machines=2, cores_per_machine=1, memory_budget=memory_budget
    )
    runtime = SimulatedRuntime(cluster)
    try:
        live = PartitionedUnfoldings.prepare(tensor, n_partitions, runtime)
        current = tensor
        for delta in deltas:
            current = current.apply_delta(delta)
            live.patch(delta)
            rebuilt = PartitionedUnfoldings.prepare(
                current, n_partitions, runtime
            )
            try:
                _assert_blocks_equal(
                    _materialize(live), _materialize(rebuilt)
                )
            finally:
                rebuilt.unpersist()
        assert live.epoch == len(deltas)
        live.unpersist()
    finally:
        runtime.close()


class TestPatchMatchesRebuild:
    def test_mixed_delta(self):
        tensor = _random_tensor(seed=0)
        _patched_vs_rebuilt(tensor, [_random_delta(tensor, seed=1)])

    def test_adds_only(self):
        tensor = _random_tensor(seed=2)
        delta = _random_delta(tensor, seed=3, n_adds=5, n_removes=0)
        _patched_vs_rebuilt(tensor, [delta])

    def test_removes_only(self):
        tensor = _random_tensor(seed=4)
        delta = _random_delta(tensor, seed=5, n_adds=0, n_removes=5)
        _patched_vs_rebuilt(tensor, [delta])

    def test_empty_delta_is_noop_with_zero_stages(self):
        tensor = _random_tensor(seed=6)
        runtime = SimulatedRuntime(
            ClusterConfig(n_machines=2, cores_per_machine=1)
        )
        try:
            live = PartitionedUnfoldings.prepare(tensor, 3, runtime)
            before = _materialize(live)
            stages_before = runtime.metrics.value("stages_total")
            live.patch(TensorDelta.empty(tensor.shape))
            assert runtime.metrics.value("stages_total") == stages_before
            assert live.epoch == 1
            _assert_blocks_equal(_materialize(live), before)
            live.unpersist()
        finally:
            runtime.close()

    def test_chained_epochs(self):
        tensor = _random_tensor(seed=7)
        deltas = []
        current = tensor
        for seed in range(3):
            delta = _random_delta(current, seed=100 + seed)
            deltas.append(delta)
            current = current.apply_delta(delta)
        _patched_vs_rebuilt(tensor, deltas)

    def test_budgeted_mmap_path(self):
        tensor = _random_tensor(seed=8)
        deltas = []
        current = tensor
        for seed in range(2):
            delta = _random_delta(current, seed=200 + seed)
            deltas.append(delta)
            current = current.apply_delta(delta)
        _patched_vs_rebuilt(tensor, deltas, memory_budget=1)

    def test_budget_path_matches_default_path(self):
        tensor = _random_tensor(seed=9)
        blocks = {}
        for budget in (None, 1):
            runtime = SimulatedRuntime(
                ClusterConfig(
                    n_machines=2, cores_per_machine=1, memory_budget=budget
                )
            )
            try:
                unfoldings = PartitionedUnfoldings.prepare(
                    tensor, 3, runtime
                )
                blocks[budget] = _materialize(unfoldings)
                unfoldings.unpersist()
            finally:
                runtime.close()
        _assert_blocks_equal(blocks[1], blocks[None])

    def test_shape_mismatch_rejected(self):
        tensor = _random_tensor(seed=10)
        runtime = SimulatedRuntime(
            ClusterConfig(n_machines=2, cores_per_machine=1)
        )
        try:
            live = PartitionedUnfoldings.prepare(tensor, 3, runtime)
            with pytest.raises(ValueError, match="shape"):
                live.patch(TensorDelta.empty((2, 2, 2)))
            live.unpersist()
        finally:
            runtime.close()

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_random_delta_streams(self, seed):
        rng = np.random.default_rng(seed)
        tensor = _random_tensor(seed=rng.integers(1 << 31))
        deltas = []
        current = tensor
        for _ in range(2):
            delta = _random_delta(
                current,
                seed=rng.integers(1 << 31),
                n_adds=int(rng.integers(0, 5)),
                n_removes=int(rng.integers(0, 5)),
            )
            deltas.append(delta)
            current = current.apply_delta(delta)
        _patched_vs_rebuilt(tensor, deltas)


class TestBaselineError:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_matches_full_recount(self, seed):
        rng = np.random.default_rng(seed)
        tensor = _random_tensor(seed=rng.integers(1 << 31))
        factors = random_factors(
            tensor.shape, rank=3, density=0.4,
            rng=np.random.default_rng(rng.integers(1 << 31)),
        )
        reconstruction = tensor_from_factors(factors)
        error = tensor.hamming_distance(reconstruction)
        delta = _random_delta(tensor, seed=rng.integers(1 << 31))
        new_tensor = tensor.apply_delta(delta)
        assert baseline_error_after_delta(error, delta, factors) == (
            new_tensor.hamming_distance(reconstruction)
        )

    def test_empty_delta_keeps_error(self):
        tensor = _random_tensor(seed=11)
        factors = random_factors(
            tensor.shape, rank=2, density=0.4, rng=np.random.default_rng(1)
        )
        error = tensor.hamming_distance(tensor_from_factors(factors))
        assert baseline_error_after_delta(
            error, TensorDelta.empty(tensor.shape), factors
        ) == error


def _full_update(tensor, factors, mode, rank, runtime, dirty=None):
    """One mode's update_factor over freshly partitioned unfoldings."""
    from repro.core.decompose import (
        MODE_FACTOR_ROLES,
        prepare_partitioned_unfoldings,
    )

    config = DbtfConfig(rank=rank, n_partitions=2)
    target_index, outer_index, inner_index = MODE_FACTOR_ROLES[mode]
    mode_rdds = prepare_partitioned_unfoldings(tensor, 2, runtime)
    try:
        if dirty is None:
            updated, _ = update_factor(
                mode_rdds[mode],
                factors[target_index],
                factors[outer_index],
                factors[inner_index],
                config,
                runtime,
            )
            return updated
        updated, _, _ = update_factor(
            mode_rdds[mode],
            factors[target_index],
            factors[outer_index],
            factors[inner_index],
            config,
            runtime,
            dirty_columns=dirty,
        )
        return updated
    finally:
        for rdd in mode_rdds:
            rdd.unpersist()


class TestDirtyColumnSoundness:
    """Clean columns keep their decisions: a delta outside a component's
    support rectangle shifts both candidate errors equally, so skipping
    clean columns (with escalation enabled) must reproduce the full
    sweep's outcome exactly when starting from a converged fixed point."""

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_scoped_sweep_matches_full_sweep_from_fixed_point(self, seed):
        rng = np.random.default_rng(seed)
        tensor, _ = planted_tensor(
            (8, 7, 6), rank=2, factor_density=0.4,
            rng=np.random.default_rng(rng.integers(1 << 31)),
        )
        runtime = SimulatedRuntime(
            ClusterConfig(n_machines=2, cores_per_machine=1)
        )
        try:
            # Reach a per-mode fixed point first: iterate full sweeps.
            factors = random_factors(
                tensor.shape, rank=2, density=0.4,
                rng=np.random.default_rng(rng.integers(1 << 31)),
            )
            factors = list(factors)
            for _ in range(3):
                for mode in range(3):
                    updated = _full_update(
                        tensor, tuple(factors), mode, 2, runtime
                    )
                    factors[mode] = updated
            factors = tuple(factors)

            delta = _random_delta(tensor, seed=int(rng.integers(1 << 31)))
            new_tensor = tensor.apply_delta(delta)
            dirty = dirty_columns_for_delta(delta, factors)
            for mode in range(3):
                full = _full_update(
                    new_tensor, factors, mode, 2, runtime
                )
                scoped = _full_update(
                    new_tensor, factors, mode, 2, runtime,
                    dirty=dirty[mode],
                )
                np.testing.assert_array_equal(scoped.words, full.words)
        finally:
            runtime.close()

    def test_empty_delta_marks_nothing_dirty(self):
        tensor = _random_tensor(seed=12)
        factors = random_factors(
            tensor.shape, rank=3, density=0.4, rng=np.random.default_rng(2)
        )
        assert dirty_columns_for_delta(
            TensorDelta.empty(tensor.shape), factors
        ) == [set(), set(), set()]
