"""Unit tests for SparseBoolTensor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor import SparseBoolTensor


def random_dense_tensor(shape, seed, density=0.3):
    rng = np.random.default_rng(seed)
    return (rng.random(shape) < density).astype(np.uint8)


class TestConstruction:
    def test_empty(self):
        tensor = SparseBoolTensor.empty((2, 3, 4))
        assert tensor.nnz == 0
        assert tensor.shape == (2, 3, 4)
        assert tensor.density() == 0.0

    def test_from_dense_round_trip(self):
        dense = random_dense_tensor((4, 5, 6), seed=1)
        tensor = SparseBoolTensor.from_dense(dense)
        np.testing.assert_array_equal(tensor.to_dense(), dense)
        assert tensor.nnz == int(dense.sum())

    def test_from_nonzeros(self):
        tensor = SparseBoolTensor.from_nonzeros((2, 2, 2), [(0, 0, 0), (1, 1, 1)])
        assert tensor.nnz == 2
        assert (0, 0, 0) in tensor
        assert (1, 1, 1) in tensor
        assert (0, 1, 0) not in tensor

    def test_duplicates_collapse(self):
        tensor = SparseBoolTensor.from_nonzeros((2, 2, 2), [(0, 0, 0), (0, 0, 0)])
        assert tensor.nnz == 1

    def test_coords_sorted(self):
        tensor = SparseBoolTensor.from_nonzeros((3, 3, 3), [(2, 0, 0), (0, 1, 2)])
        np.testing.assert_array_equal(tensor.coords[0], [0, 1, 2])

    def test_out_of_bounds_rejected(self):
        with pytest.raises(ValueError):
            SparseBoolTensor.from_nonzeros((2, 2, 2), [(2, 0, 0)])

    def test_negative_coordinate_rejected(self):
        with pytest.raises(ValueError):
            SparseBoolTensor((2, 2), np.array([[-1, 0]]))

    def test_negative_shape_rejected(self):
        with pytest.raises(ValueError):
            SparseBoolTensor((-1, 2))

    def test_zero_mode_rejected(self):
        with pytest.raises(ValueError):
            SparseBoolTensor(())

    def test_bad_coords_shape_rejected(self):
        with pytest.raises(ValueError):
            SparseBoolTensor((2, 2, 2), np.array([[0, 0]]))


class TestProperties:
    def test_density(self):
        tensor = SparseBoolTensor.from_nonzeros((2, 2, 2), [(0, 0, 0), (1, 1, 1)])
        assert tensor.density() == pytest.approx(2 / 8)

    def test_frobenius_norm_is_sqrt_nnz(self):
        tensor = SparseBoolTensor.from_nonzeros((3, 3, 3), [(0, 0, 0), (1, 1, 1), (2, 2, 2)])
        assert tensor.frobenius_norm() == pytest.approx(np.sqrt(3))

    def test_contains_validates_arity(self):
        tensor = SparseBoolTensor.empty((2, 2, 2))
        with pytest.raises(ValueError):
            (0, 0) in tensor

    def test_contains_validates_bounds(self):
        tensor = SparseBoolTensor.empty((2, 2, 2))
        with pytest.raises(IndexError):
            (0, 0, 5) in tensor


class TestSetAlgebra:
    def setup_method(self):
        self.left_dense = random_dense_tensor((4, 4, 4), seed=2)
        self.right_dense = random_dense_tensor((4, 4, 4), seed=3)
        self.left = SparseBoolTensor.from_dense(self.left_dense)
        self.right = SparseBoolTensor.from_dense(self.right_dense)

    def test_boolean_or(self):
        result = self.left.boolean_or(self.right)
        np.testing.assert_array_equal(
            result.to_dense(), self.left_dense | self.right_dense
        )

    def test_boolean_and(self):
        result = self.left.boolean_and(self.right)
        np.testing.assert_array_equal(
            result.to_dense(), self.left_dense & self.right_dense
        )

    def test_xor(self):
        result = self.left.xor(self.right)
        np.testing.assert_array_equal(
            result.to_dense(), self.left_dense ^ self.right_dense
        )

    def test_minus(self):
        result = self.left.minus(self.right)
        np.testing.assert_array_equal(
            result.to_dense(), self.left_dense & ~self.right_dense & 1
        )

    def test_hamming_distance(self):
        expected = int((self.left_dense != self.right_dense).sum())
        assert self.left.hamming_distance(self.right) == expected

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            self.left.boolean_or(SparseBoolTensor.empty((4, 4, 5)))

    def test_or_identity_is_empty(self):
        empty = SparseBoolTensor.empty(self.left.shape)
        assert self.left.boolean_or(empty) == self.left

    def test_xor_self_is_empty(self):
        assert self.left.xor(self.left).nnz == 0

    @given(st.integers(0, 500), st.integers(0, 500))
    @settings(max_examples=30, deadline=None)
    def test_de_morgan_via_counts(self, seed_a, seed_b):
        left = SparseBoolTensor.from_dense(random_dense_tensor((3, 3, 3), seed_a))
        right = SparseBoolTensor.from_dense(random_dense_tensor((3, 3, 3), seed_b))
        union = left.boolean_or(right).nnz
        intersection = left.boolean_and(right).nnz
        assert union + intersection == left.nnz + right.nnz


class TestSlicing:
    def test_mode_slice(self):
        dense = random_dense_tensor((3, 4, 5), seed=4)
        tensor = SparseBoolTensor.from_dense(dense)
        for mode, size in enumerate(tensor.shape):
            for index in range(size):
                fiber = tensor.mode_slice(mode, index)
                expected = np.take(dense, index, axis=mode)
                np.testing.assert_array_equal(fiber.to_dense(), expected)

    def test_mode_slice_bounds(self):
        tensor = SparseBoolTensor.empty((2, 2, 2))
        with pytest.raises(ValueError):
            tensor.mode_slice(3, 0)
        with pytest.raises(IndexError):
            tensor.mode_slice(0, 2)

    def test_mode_indices(self):
        tensor = SparseBoolTensor.from_nonzeros((5, 5, 5), [(0, 1, 2), (3, 1, 2)])
        np.testing.assert_array_equal(tensor.mode_indices(0), [0, 3])
        np.testing.assert_array_equal(tensor.mode_indices(1), [1])

    def test_mode_indices_bounds(self):
        with pytest.raises(ValueError):
            SparseBoolTensor.empty((2, 2, 2)).mode_indices(5)


class TestDunder:
    def test_equality(self):
        dense = random_dense_tensor((2, 3, 2), seed=5)
        assert SparseBoolTensor.from_dense(dense) == SparseBoolTensor.from_dense(dense)

    def test_inequality_other_type(self):
        assert SparseBoolTensor.empty((1, 1)) != 42

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(SparseBoolTensor.empty((1, 1)))

    def test_repr(self):
        assert "nnz=0" in repr(SparseBoolTensor.empty((2, 2)))

    def test_copy_independent(self):
        tensor = SparseBoolTensor.from_nonzeros((2, 2, 2), [(0, 0, 0)])
        clone = tensor.copy()
        clone.coords[0, 0] = 1
        assert tensor.coords[0, 0] == 0
