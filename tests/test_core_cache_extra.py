"""Extra cache tests: multi-word widths and cross-word group keys."""

import numpy as np
import pytest

from repro.bitops import BitMatrix, packing
from repro.core import RowSummationCache


class TestWideCaches:
    def test_width_beyond_one_word(self):
        # Inner matrices wider than 64 columns pack into multiple words;
        # the cached summations must still match a dense reference.
        rng = np.random.default_rng(0)
        inner = BitMatrix.random(130, 4, 0.4, rng)
        cache = RowSummationCache(inner, group_size=15)
        dense = inner.to_dense()
        for mask in (0b0000, 0b0101, 0b1111):
            packed_mask = packing.pack_bits(
                np.array([[(mask >> r) & 1 for r in range(4)]], dtype=np.uint8)
            )
            fetched = cache.fetch(
                cache.tables_for(0, 130), cache.group_keys(packed_mask)
            )[0]
            selected = [r for r in range(4) if mask & (1 << r)]
            expected = (
                (dense[:, selected].sum(axis=1) > 0).astype(np.uint8)
                if selected
                else np.zeros(130, dtype=np.uint8)
            )
            np.testing.assert_array_equal(
                packing.unpack_bits(fetched, 130), expected
            )

    def test_group_keys_crossing_word_boundary(self):
        # Rank > 64 forces mask words > 1; a group straddling the word
        # boundary must take the slice_bits slow path and stay correct.
        rng = np.random.default_rng(1)
        rank = 70
        inner = BitMatrix.random(8, rank, 0.3, rng)
        # Groups of 18/17: the last group covers bits [53, 70), crossing
        # the 64-bit word boundary — the slice_bits slow path.
        cache = RowSummationCache(inner, group_size=18)
        assert any(
            start // 64 != (start + size - 1) // 64 for start, size in cache.groups
        )
        masks = BitMatrix.random(5, rank, 0.5, rng)
        keys = cache.group_keys(masks.words)
        for row in range(5):
            row_mask = masks.row_mask(row)
            for (start, size), key_array in zip(cache.groups, keys):
                expected = (row_mask >> start) & ((1 << size) - 1)
                assert int(key_array[row]) == expected

    def test_fetch_through_cross_word_keys(self):
        # End-to-end over the slow path: with rank 130 the masks span three
        # words and most groups straddle word boundaries; fetched summations
        # must still match the dense reference.
        rng = np.random.default_rng(3)
        rank = 130
        inner = BitMatrix.random(12, rank, 0.2, rng)
        cache = RowSummationCache(inner, group_size=12)
        assert any(
            start // 64 != (start + size - 1) // 64 for start, size in cache.groups
        )
        masks = BitMatrix.random(6, rank, 0.3, rng)
        fetched = cache.fetch(cache.full_tables, cache.group_keys(masks.words))
        dense_inner = inner.to_dense()
        dense_masks = masks.to_dense().astype(bool)
        for row in range(6):
            selected = np.flatnonzero(dense_masks[row])
            expected = (
                (dense_inner[:, selected].sum(axis=1) > 0).astype(np.uint8)
                if selected.size
                else np.zeros(12, dtype=np.uint8)
            )
            np.testing.assert_array_equal(
                packing.unpack_bits(fetched[row], 12), expected
            )

    def test_sliced_tables_on_wide_inner(self):
        rng = np.random.default_rng(2)
        inner = BitMatrix.random(200, 3, 0.4, rng)
        cache = RowSummationCache(inner, group_size=15)
        sliced = cache.tables_for(60, 135)
        dense = inner.to_dense()
        mask = 0b110
        packed_mask = packing.pack_bits(
            np.array([[0, 1, 1]], dtype=np.uint8)
        )
        fetched = cache.fetch(sliced, cache.group_keys(packed_mask))[0]
        expected = (dense[60:135, [1, 2]].sum(axis=1) > 0).astype(np.uint8)
        np.testing.assert_array_equal(packing.unpack_bits(fetched, 75), expected)
