"""Kernel-dispatch tier: tiers, autotune cache, and observability.

Covers the dispatcher's tier semantics (fixed/auto/reference/forced), the
persistent autotune cache's failure modes (missing, corrupt, stale
version, other machine, concurrent writers), threshold overrides
replacing the hard-coded batch constant, configuration plumbing
(environment, ClusterConfig, CLI), and the dispatch observability
contract — ``kernel_span`` carrying the winning ``impl=`` label and
``kernel_dispatch_total`` incrementing — across all three backends.
"""

from __future__ import annotations

import json
import os
import threading

import numpy as np
import pytest

from repro.bitops import BitMatrix, boolean_matmul, dispatch
from repro.bitops.ops import _BATCH_MIN_ROWS, xor_popcount_rows
from repro.distengine import ClusterConfig, SimulatedRuntime

BACKENDS = ["serial", "thread", "process"]


@pytest.fixture(autouse=True)
def _clean_dispatcher():
    """Each test starts and ends with a pristine process-global dispatcher."""
    dispatch.reset_dispatcher(clear_env=True)
    yield
    dispatch.reset_dispatcher(clear_env=True)


def _matmul_shape(m=48, k=64, n=96):
    return (m, k, n)


# ----------------------------------------------------------------------
# Tier semantics
# ----------------------------------------------------------------------
class TestTiers:
    def test_fixed_tier_reproduces_legacy_heuristics(self):
        dispatcher = dispatch.KernelDispatcher(tier="fixed")
        below = _matmul_shape(m=_BATCH_MIN_ROWS - 1)
        at = _matmul_shape(m=_BATCH_MIN_ROWS)
        assert dispatcher.choose("boolean_matmul", below) == "rowloop"
        assert dispatcher.choose("boolean_matmul", at) == "batched"
        assert dispatcher.choose("khatri_rao", (8, 8, 16)) == "broadcast"
        assert dispatcher.choose("pointwise_vector_matrix", (64, 32)) == "mask"
        assert dispatcher.choose("xor_popcount", (64, 4)) == "fused"
        assert dispatcher.choose("xor_popcount_rows", (64, 4)) == "fused"

    def test_reference_tier_always_picks_reference(self):
        dispatcher = dispatch.KernelDispatcher(tier="reference")
        assert dispatcher.choose("boolean_matmul", _matmul_shape(m=4096)) == "rowloop"
        assert dispatcher.choose("khatri_rao", (8, 8, 16)) == "rowloop"
        assert dispatcher.choose("pointwise_vector_matrix", (64, 32)) == "rowloop"
        assert dispatcher.choose("xor_popcount", (64, 4)) == "twopass"

    def test_forced_impl_tier(self):
        dispatcher = dispatch.KernelDispatcher(tier="bulk")
        assert dispatcher.choose("boolean_matmul", _matmul_shape(m=2)) == "bulk"
        assert dispatcher.choose("khatri_rao", (8, 8, 16)) == "bulk"
        # Kernels without that impl fall back to the fixed-tier choice.
        assert dispatcher.choose("pointwise_vector_matrix", (64, 32)) == "mask"

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel tier"):
            dispatch.KernelDispatcher(tier="warp-speed")

    def test_forced_tier_results_match_default(self):
        rng = np.random.default_rng(0)
        left = BitMatrix.random(40, 33, 0.4, rng)
        right = BitMatrix.random(33, 65, 0.4, rng)
        expected = boolean_matmul(left, right)
        for tier in ("reference", "bulk", "batched", "rowloop"):
            dispatch.configure(tier=tier)
            assert boolean_matmul(left, right) == expected, tier


# ----------------------------------------------------------------------
# Autotune cache persistence and failure modes
# ----------------------------------------------------------------------
class TestAutotuneCache:
    def test_autotune_persists_winners_and_thresholds(self, tmp_path):
        cache_path = tmp_path / "kernels.json"
        dispatcher = dispatch.KernelDispatcher(tier="auto", cache_path=cache_path)
        results = dispatcher.autotune(
            grid={"boolean_matmul": [(8, 16, 32), (256, 64, 256)]}, repeats=1
        )
        assert set(results["boolean_matmul"]) == {(8, 16, 32), (256, 64, 256)}
        document = json.loads(cache_path.read_text())
        assert document["version"] == dispatch.AutotuneCache.VERSION
        assert document["machine"] == dispatch.machine_fingerprint()
        matmul_entries = {
            key: entry for key, entry in document["entries"].items()
            if key.startswith("boolean_matmul/")
        }
        assert matmul_entries
        for entry in matmul_entries.values():
            assert entry["impl"] in {"rowloop", "batched", "bulk", "numba"}
            assert all(t >= 0 for t in entry["timings"].values())

    def test_cached_winner_reused_without_measuring(self, tmp_path):
        cache_path = tmp_path / "kernels.json"
        shape = (48, 64, 96)
        key = f"boolean_matmul/{dispatch.shape_class(shape)}"
        cache = dispatch.AutotuneCache(cache_path)
        cache.record(key, "bulk", {"bulk": 1e-6})
        cache.save()
        dispatcher = dispatch.KernelDispatcher(tier="auto", cache_path=cache_path)

        def _boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("cache hit must not re-measure")

        dispatcher._measure = _boom
        rng = np.random.default_rng(0)
        args = (BitMatrix.random(48, 64, 0.3, rng), BitMatrix.random(64, 96, 0.3, rng))
        assert dispatcher.resolve("boolean_matmul", shape, args).name == "bulk"

    def test_pinned_cache_makes_dispatch_deterministic(self, tmp_path):
        """A checked-in cache pins the winner regardless of live timings."""
        cache_path = tmp_path / "kernels.json"
        shape = (256, 64, 128)
        key = f"boolean_matmul/{dispatch.shape_class(shape)}"
        cache = dispatch.AutotuneCache(cache_path)
        cache.record(key, "rowloop", {"rowloop": 1.0})
        cache.save()
        for _ in range(3):
            dispatcher = dispatch.KernelDispatcher(tier="auto", cache_path=cache_path)
            assert dispatcher.choose("boolean_matmul", shape) == "rowloop"

    def test_auto_tier_measures_unseen_shape_and_persists(self, tmp_path):
        cache_path = tmp_path / "kernels.json"
        dispatcher = dispatch.KernelDispatcher(
            tier="auto", cache_path=cache_path, autotune_repeats=1
        )
        rng = np.random.default_rng(1)
        left = BitMatrix.random(24, 16, 0.3, rng)
        right = BitMatrix.random(16, 32, 0.3, rng)
        shape = (24, 16, 32)
        spec = dispatcher.resolve("boolean_matmul", shape, (left, right))
        assert spec.name in dispatch.kernel("boolean_matmul").impls
        # Persisted: a fresh dispatcher sees the winner without operands.
        rebuilt = dispatch.KernelDispatcher(tier="auto", cache_path=cache_path)
        assert rebuilt.choose("boolean_matmul", shape) == spec.name

    def test_missing_cache_falls_back_to_defaults(self, tmp_path):
        dispatcher = dispatch.KernelDispatcher(
            tier="auto", cache_path=tmp_path / "absent.json"
        )
        # No operands -> no measurement possible -> fixed-tier fallback.
        assert dispatcher.choose("boolean_matmul", (256, 64, 128)) == "batched"

    @pytest.mark.parametrize(
        "payload",
        [
            "{not json at all",
            json.dumps([1, 2, 3]),
            json.dumps({"version": 999, "machine": "x", "entries": {}}),
            json.dumps({"version": 1, "machine": "someone-else",
                        "entries": {"boolean_matmul/9:7:8": {"impl": "bulk"}}}),
            json.dumps({"version": 1, "entries": "not-a-dict"}),
        ],
        ids=["corrupt", "wrong-type", "stale-version", "other-machine",
             "bad-entries"],
    )
    def test_defective_cache_ignored_without_error(self, tmp_path, payload):
        cache_path = tmp_path / "kernels.json"
        cache_path.write_text(payload)
        dispatcher = dispatch.KernelDispatcher(tier="auto", cache_path=cache_path)
        assert dispatcher.cache.entries == {}
        assert dispatcher.choose("boolean_matmul", (256, 64, 128)) == "batched"

    def test_threshold_override_replaces_batch_constant(self, tmp_path):
        """The cache's thresholds section retires _BATCH_MIN_ROWS."""
        cache_path = tmp_path / "kernels.json"
        cache = dispatch.AutotuneCache(cache_path)
        cache.update_thresholds({"boolean_matmul.batch_min_rows": 8})
        cache.save()
        dispatcher = dispatch.KernelDispatcher(tier="fixed", cache_path=cache_path)
        assert dispatcher.choose("boolean_matmul", (8, 64, 96)) == "batched"
        assert dispatcher.choose("boolean_matmul", (7, 64, 96)) == "rowloop"
        # Without the cache the compiled-in default still applies.
        bare = dispatch.KernelDispatcher(tier="fixed")
        assert bare.choose("boolean_matmul", (8, 64, 96)) == "rowloop"

    def test_concurrent_writers_never_torn_write(self, tmp_path):
        """Racing saves may lose a race but must always leave valid JSON."""
        cache_path = tmp_path / "kernels.json"
        n_writers = 8

        def write(worker):
            cache = dispatch.AutotuneCache(cache_path)
            for i in range(5):
                cache.record(f"k/{worker}:{i}", "bulk", {"bulk": 1e-6})
                cache.save()

        threads = [
            threading.Thread(target=write, args=(w,)) for w in range(n_writers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        document = json.loads(cache_path.read_text())
        assert document["version"] == dispatch.AutotuneCache.VERSION
        assert document["entries"]
        # The atomic temp+rename pattern leaves no partial files behind.
        leftovers = [p for p in os.listdir(tmp_path) if p.endswith(".tmp")]
        assert leftovers == []

    def test_directory_cache_path_gets_default_filename(self, tmp_path):
        cache = dispatch.AutotuneCache(tmp_path)
        assert cache.path == str(tmp_path / dispatch.CACHE_FILENAME)


# ----------------------------------------------------------------------
# Configuration plumbing
# ----------------------------------------------------------------------
class TestConfiguration:
    def test_configure_exports_environment_for_workers(self, tmp_path):
        cache_path = tmp_path / "kernels.json"
        dispatch.configure(tier="reference", cache_path=cache_path)
        assert os.environ[dispatch.ENV_TIER] == "reference"
        assert os.environ[dispatch.ENV_CACHE] == str(cache_path)
        # A fresh process-global dispatcher (e.g. in a spawned worker)
        # reconstructs the same configuration from the environment.
        dispatch.reset_dispatcher()
        rebuilt = dispatch.get_dispatcher()
        assert rebuilt.tier == "reference"
        assert rebuilt.cache is not None
        assert rebuilt.cache.path == str(cache_path)

    def test_cluster_config_applies_tier_via_runtime(self):
        config = ClusterConfig(n_machines=2, kernel_tier="reference")
        with SimulatedRuntime(config):
            assert dispatch.get_dispatcher().tier == "reference"

    def test_cluster_config_with_kernel_tier_helper(self):
        config = ClusterConfig(n_machines=2).with_kernel_tier("auto", "/tmp/x.json")
        assert config.kernel_tier == "auto"
        assert config.autotune_cache == "/tmp/x.json"

    def test_cluster_config_rejects_empty_tier(self):
        with pytest.raises(ValueError, match="kernel_tier"):
            ClusterConfig(kernel_tier="")

    def test_cli_kernel_tier_flags(self, tmp_path):
        from repro.cli import build_parser, main

        args = build_parser().parse_args(
            ["factorize", "t.tns", "--kernel-tier", "auto",
             "--autotune-cache", "c.json"]
        )
        assert args.kernel_tier == "auto"
        assert args.autotune_cache == "c.json"
        # An unknown tier is a usage error (exit code 2), not a traceback.
        tensor_path = tmp_path / "tiny.tns"
        assert main(["generate", "--kind", "random", "--shape", "8", "8", "8",
                     "--density", "0.2", "--out", str(tensor_path)]) == 0
        assert main(["factorize", str(tensor_path), "--rank", "2",
                     "--max-iterations", "1",
                     "--kernel-tier", "not-a-tier"]) == 2
        # A real tier runs end-to-end.
        assert main(["factorize", str(tensor_path), "--rank", "2",
                     "--max-iterations", "1",
                     "--kernel-tier", "reference"]) == 0


# ----------------------------------------------------------------------
# Observability: impl= span labels and kernel_dispatch_total
# ----------------------------------------------------------------------
def _kernel_probe_task(index, items):
    """Module-level (picklable) task: one matmul + one xor per partition."""
    seed = items[0]
    rng = np.random.default_rng(seed)
    left = BitMatrix.random(_BATCH_MIN_ROWS + 16, 12, 0.4, rng)
    right = BitMatrix.random(12, 9, 0.4, rng)
    product = boolean_matmul(left, right)
    totals = xor_popcount_rows(left.words, left.words)
    return [int(product.words.sum() % 1000003) + int(totals.sum())]


@pytest.mark.parametrize("backend", BACKENDS)
class TestDispatchObservability:
    def test_span_impl_label_and_dispatch_counter(self, backend):
        config = ClusterConfig(n_machines=2, backend=backend, tracing=True)
        with SimulatedRuntime(config) as runtime:
            results = runtime.run_stage(
                "kernelProbe", _kernel_probe_task, [(0, [0]), (1, [1])]
            )
        assert len(results) == 2

        matmul_spans = [
            span for span in runtime.tracer.spans
            if span.name == "boolean_matmul"
        ]
        assert len(matmul_spans) == 2
        for span in matmul_spans:
            # 48 rows >= the batched threshold: the fixed tier must have
            # picked (and labelled) the batched implementation.
            assert span.attrs["impl"] == "batched"
            assert span.attrs["m"] == _BATCH_MIN_ROWS + 16

        assert runtime.metrics.value(
            "kernel_dispatch_total",
            kernel="boolean_matmul", impl="batched", tier="fixed",
        ) == 2.0
        assert runtime.metrics.value(
            "kernel_dispatch_total",
            kernel="xor_popcount_rows", impl="fused", tier="fixed",
        ) == 2.0

    def test_counter_totals_invariant_across_repeat_runs(self, backend):
        def run():
            config = ClusterConfig(n_machines=2, backend=backend, tracing=True)
            with SimulatedRuntime(config) as runtime:
                runtime.run_stage(
                    "kernelProbe", _kernel_probe_task,
                    [(i, [i]) for i in range(4)],
                )
            return runtime.metrics.value(
                "kernel_dispatch_total",
                kernel="boolean_matmul", impl="batched", tier="fixed",
            )

        assert run() == run() == 4.0


# ----------------------------------------------------------------------
# End-to-end: tiers never change factors or errors
# ----------------------------------------------------------------------
class TestEndToEndEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_dbtf_identical_under_reference_tier(self, backend):
        from repro.core import dbtf
        from repro.tensor import planted_tensor

        tensor, _ = planted_tensor(
            (16, 16, 16), rank=3, factor_density=0.3,
            rng=np.random.default_rng(5),
        )

        dispatch.configure(tier="fixed")
        baseline = dbtf(tensor, rank=3, seed=1, max_iterations=2,
                        backend=backend)
        dispatch.configure(tier="reference")
        referenced = dbtf(tensor, rank=3, seed=1, max_iterations=2,
                          backend=backend)

        assert referenced.error == baseline.error
        assert referenced.errors_per_iteration == baseline.errors_per_iteration
        for ours, theirs in zip(referenced.factors, baseline.factors):
            assert np.array_equal(ours.to_dense(), theirs.to_dense())

    def test_dbtf_identical_under_auto_tier(self, tmp_path):
        from repro.core import dbtf
        from repro.tensor import planted_tensor

        tensor, _ = planted_tensor(
            (16, 16, 16), rank=3, factor_density=0.3,
            rng=np.random.default_rng(5),
        )

        dispatch.configure(tier="fixed")
        baseline = dbtf(tensor, rank=3, seed=1, max_iterations=2)
        dispatch.configure(tier="auto", cache_path=tmp_path / "kernels.json")
        tuned = dbtf(tensor, rank=3, seed=1, max_iterations=2)

        assert tuned.error == baseline.error
        for ours, theirs in zip(tuned.factors, baseline.factors):
            assert np.array_equal(ours.to_dense(), theirs.to_dense())
