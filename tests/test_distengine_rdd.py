"""Unit tests for the simulated RDD and runtime."""

import numpy as np
import pytest

from repro.distengine import (
    ClusterConfig,
    SimulatedRuntime,
    TransferKind,
    estimate_bytes,
)


@pytest.fixture
def runtime():
    return SimulatedRuntime(ClusterConfig(n_machines=4, cores_per_machine=2))


class TestParallelize:
    def test_partition_count(self, runtime):
        rdd = runtime.parallelize(list(range(10)), n_partitions=3)
        assert rdd.n_partitions == 3
        assert rdd.count() == 10

    def test_balanced_partitions(self, runtime):
        rdd = runtime.parallelize(list(range(10)), n_partitions=3)
        sizes = [len(p) for p in rdd.glom()]
        assert sorted(sizes) == [3, 3, 4]

    def test_order_preserved(self, runtime):
        rdd = runtime.parallelize(list(range(10)), n_partitions=3)
        assert rdd.collect() == list(range(10))

    def test_default_partitions_is_total_slots(self, runtime):
        rdd = runtime.parallelize(list(range(100)))
        assert rdd.n_partitions == runtime.config.total_slots

    def test_empty_input(self, runtime):
        rdd = runtime.parallelize([], n_partitions=4)
        assert rdd.count() == 0
        assert rdd.collect() == []

    def test_invalid_partition_count(self, runtime):
        with pytest.raises(ValueError):
            runtime.parallelize([1], n_partitions=0)

    def test_from_partitions(self, runtime):
        rdd = runtime.from_partitions([[1, 2], [3]])
        assert rdd.n_partitions == 2
        assert rdd.collect() == [1, 2, 3]


class TestTransformations:
    def test_map(self, runtime):
        rdd = runtime.parallelize([1, 2, 3], n_partitions=2)
        assert rdd.map(lambda x: x * 10).collect() == [10, 20, 30]

    def test_filter(self, runtime):
        rdd = runtime.parallelize(list(range(10)), n_partitions=3)
        assert rdd.filter(lambda x: x % 2 == 0).collect() == [0, 2, 4, 6, 8]

    def test_map_partitions(self, runtime):
        rdd = runtime.parallelize([1, 2, 3, 4], n_partitions=2)
        sums = rdd.map_partitions(lambda items: [sum(items)]).collect()
        assert sums == [3, 7]

    def test_map_partitions_with_index(self, runtime):
        rdd = runtime.parallelize([1, 2, 3, 4], n_partitions=2)
        tagged = rdd.map_partitions_with_index(
            lambda index, items: [(index, item) for item in items]
        ).collect()
        assert tagged == [(0, 1), (0, 2), (1, 3), (1, 4)]

    def test_stages_recorded(self, runtime):
        rdd = runtime.parallelize([1, 2, 3], n_partitions=2)
        rdd.map(lambda x: x, name="my-stage").collect()
        assert any(stage.name == "my-stage" for stage in runtime.stages)
        stage = next(s for s in runtime.stages if s.name == "my-stage")
        assert stage.n_tasks == 2

    def test_persist_returns_self(self, runtime):
        rdd = runtime.parallelize([1], n_partitions=1)
        assert rdd.persist() is rdd


class TestCombineByKey:
    def test_group_and_sum(self, runtime):
        pairs = [("a", 1), ("b", 2), ("a", 3), ("b", 4), ("a", 5)]
        rdd = runtime.parallelize(pairs, n_partitions=3)
        combined = dict(rdd.reduce_by_key(lambda x, y: x + y).collect())
        assert combined == {"a": 9, "b": 6}

    def test_combine_by_key_custom(self, runtime):
        pairs = [(1, "x"), (2, "y"), (1, "z")]
        rdd = runtime.parallelize(pairs, n_partitions=2)
        combined = dict(
            rdd.combine_by_key(
                create_combiner=lambda v: [v],
                merge_value=lambda acc, v: acc + [v],
                merge_combiners=lambda a, b: a + b,
            ).collect()
        )
        assert sorted(combined[1]) == ["x", "z"]
        assert combined[2] == ["y"]

    def test_shuffle_bytes_recorded(self, runtime):
        pairs = [(i % 3, np.ones(100)) for i in range(9)]
        rdd = runtime.parallelize(pairs, n_partitions=3)
        rdd.reduce_by_key(lambda x, y: x + y)
        assert runtime.ledger.bytes_of_kind(TransferKind.SHUFFLE) > 0

    def test_target_partition_count(self, runtime):
        pairs = [(i, i) for i in range(20)]
        rdd = runtime.parallelize(pairs, n_partitions=4)
        result = rdd.reduce_by_key(lambda x, y: x + y, n_partitions=7)
        assert result.n_partitions == 7


class TestActions:
    def test_reduce(self, runtime):
        rdd = runtime.parallelize([1, 2, 3, 4], n_partitions=2)
        assert rdd.reduce(lambda x, y: x + y) == 10

    def test_reduce_empty_raises(self, runtime):
        with pytest.raises(ValueError):
            runtime.parallelize([], n_partitions=2).reduce(lambda x, y: x)

    def test_collect_records_bytes(self, runtime):
        rdd = runtime.parallelize([np.ones(1000)], n_partitions=1)
        rdd.collect()
        assert runtime.ledger.bytes_of_kind(TransferKind.COLLECT) >= 8000


class TestBroadcast:
    def test_value_round_trip(self, runtime):
        broadcast = runtime.broadcast({"a": 1}, name="config")
        assert broadcast.value == {"a": 1}

    def test_bytes_metered(self, runtime):
        runtime.broadcast(np.ones(1000), name="big")
        assert runtime.ledger.bytes_of_kind(TransferKind.BROADCAST) >= 8000


class TestSimulatedTime:
    def test_more_machines_never_slower(self, runtime):
        rdd = runtime.parallelize(list(range(64)), n_partitions=16)
        rdd.map(lambda x: sum(range(2000))).count()
        t4 = runtime.simulated_time(4)
        t16 = runtime.simulated_time(16)
        assert t16 <= t4 + 1e-9

    def test_broadcast_cost_scales_with_machines(self):
        config = ClusterConfig(
            n_machines=4, cores_per_machine=1, network_bytes_per_sec=1e3,
            task_launch_overhead_sec=0.0,
        )
        runtime = SimulatedRuntime(config)
        runtime.broadcast(np.ones(125), name="x")  # 1000 bytes -> 1 s/machine
        assert runtime.simulated_time(2) == pytest.approx(2.0)
        assert runtime.simulated_time(4) == pytest.approx(4.0)

    def test_invalid_machine_count(self, runtime):
        with pytest.raises(ValueError):
            runtime.simulated_time(0)

    def test_report_fields(self, runtime):
        rdd = runtime.parallelize([1, 2, 3], n_partitions=2)
        rdd.map(lambda x: x).collect()
        runtime.broadcast([1, 2, 3])
        report = runtime.report()
        assert report.n_stages == 1
        assert report.n_machines == 4
        assert report.simulated_time > 0
        assert report.network_bytes == (
            report.shuffle_bytes + report.broadcast_bytes
            + report.collect_bytes + report.task_bytes
        )

    def test_reset(self, runtime):
        rdd = runtime.parallelize([1], n_partitions=1)
        rdd.map(lambda x: x).collect()
        runtime.reset()
        assert not runtime.stages
        assert runtime.ledger.total_bytes == 0


class TestClusterConfig:
    def test_total_slots(self):
        assert ClusterConfig(n_machines=3, cores_per_machine=4).total_slots == 12

    def test_with_machines(self):
        config = ClusterConfig(n_machines=16).with_machines(4)
        assert config.n_machines == 4
        assert config.cores_per_machine == ClusterConfig().cores_per_machine

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_machines": 0},
            {"cores_per_machine": 0},
            {"network_bytes_per_sec": 0},
            {"task_launch_overhead_sec": -1},
            {"driver_latency_sec": -0.1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ClusterConfig(**kwargs)


class TestEstimateBytes:
    def test_numpy_exact(self):
        assert estimate_bytes(np.zeros(10, dtype=np.float64)) == 80

    def test_scalars(self):
        assert estimate_bytes(3) == 8
        assert estimate_bytes(2.5) == 8
        assert estimate_bytes(True) == 8

    def test_none_is_free(self):
        assert estimate_bytes(None) == 0

    def test_containers_recursive(self):
        assert estimate_bytes([np.zeros(2), np.zeros(3)]) == 16 + 24 + 8

    def test_string(self):
        assert estimate_bytes("abc") == 3

    def test_bitmatrix_uses_words(self):
        from repro.bitops import BitMatrix

        matrix = BitMatrix.zeros(4, 100)  # 4 rows x 2 words x 8 bytes
        assert estimate_bytes(matrix) == 64
