"""Unit tests for reconstruction-error metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    coverage_stats,
    fast_reconstruction_error,
    reconstruction_error,
    relative_reconstruction_error,
)
from repro.tensor import (
    SparseBoolTensor,
    planted_tensor,
    random_factors,
    random_tensor,
    tensor_from_factors,
)


class TestReconstructionError:
    def test_zero_for_exact_factors(self):
        rng = np.random.default_rng(0)
        tensor, factors = planted_tensor((10, 10, 10), rank=3, factor_density=0.3, rng=rng)
        assert reconstruction_error(tensor, factors) == 0

    def test_equals_nnz_for_zero_factors(self):
        rng = np.random.default_rng(1)
        tensor = random_tensor((8, 8, 8), 0.1, rng)
        factors = random_factors((8, 8, 8), 2, 0.0, rng)
        assert reconstruction_error(tensor, factors) == tensor.nnz

    def test_relative_error(self):
        rng = np.random.default_rng(2)
        tensor = random_tensor((8, 8, 8), 0.1, rng)
        factors = random_factors((8, 8, 8), 2, 0.0, rng)
        assert relative_reconstruction_error(tensor, factors) == pytest.approx(1.0)

    def test_relative_error_empty_tensor(self):
        rng = np.random.default_rng(3)
        factors = random_factors((4, 4, 4), 2, 0.5, rng)
        tensor = SparseBoolTensor.empty((4, 4, 4))
        expected = float(tensor_from_factors(factors).nnz)
        assert relative_reconstruction_error(tensor, factors) == expected


class TestFastReconstructionError:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_sparse_version(self, seed):
        rng = np.random.default_rng(seed)
        tensor = random_tensor((9, 7, 11), 0.15, rng)
        factors = random_factors((9, 7, 11), 4, 0.3, rng)
        assert fast_reconstruction_error(tensor, factors) == reconstruction_error(
            tensor, factors
        )

    def test_group_split_does_not_change_value(self):
        rng = np.random.default_rng(6)
        tensor = random_tensor((8, 8, 8), 0.1, rng)
        factors = random_factors((8, 8, 8), 7, 0.3, rng)
        full = fast_reconstruction_error(tensor, factors, group_size=16)
        split = fast_reconstruction_error(tensor, factors, group_size=3)
        assert full == split

    @given(st.integers(0, 500), st.integers(1, 6))
    @settings(max_examples=25, deadline=None)
    def test_fast_equals_sparse_property(self, seed, rank):
        rng = np.random.default_rng(seed)
        tensor = random_tensor((6, 5, 7), 0.2, rng)
        factors = random_factors((6, 5, 7), rank, 0.4, rng)
        assert fast_reconstruction_error(tensor, factors) == reconstruction_error(
            tensor, factors
        )


class TestCoverageStats:
    def test_perfect_factors(self):
        rng = np.random.default_rng(7)
        tensor, factors = planted_tensor((8, 8, 8), rank=2, factor_density=0.4, rng=rng)
        stats = coverage_stats(tensor, factors)
        assert stats["precision"] == pytest.approx(1.0)
        assert stats["recall"] == pytest.approx(1.0)
        assert stats["overcovered_zeros"] == 0

    def test_zero_factors(self):
        rng = np.random.default_rng(8)
        tensor = random_tensor((6, 6, 6), 0.2, rng)
        factors = random_factors((6, 6, 6), 2, 0.0, rng)
        stats = coverage_stats(tensor, factors)
        assert stats["recall"] == 0.0
        assert stats["precision"] == 1.0  # vacuous: empty reconstruction

    def test_counts_consistent(self):
        rng = np.random.default_rng(9)
        tensor = random_tensor((6, 6, 6), 0.2, rng)
        factors = random_factors((6, 6, 6), 3, 0.4, rng)
        stats = coverage_stats(tensor, factors)
        reconstructed = tensor_from_factors(factors)
        assert stats["covered_ones"] + stats["overcovered_zeros"] == reconstructed.nnz
        # error = missed ones + overcovered zeros
        missed = tensor.nnz - stats["covered_ones"]
        assert missed + stats["overcovered_zeros"] == reconstruction_error(
            tensor, factors
        )
