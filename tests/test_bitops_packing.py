"""Unit tests for the bit-packing primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitops import packing


class TestWordsForBits:
    def test_zero(self):
        assert packing.words_for_bits(0) == 0

    def test_one(self):
        assert packing.words_for_bits(1) == 1

    def test_exact_word(self):
        assert packing.words_for_bits(64) == 1

    def test_word_plus_one(self):
        assert packing.words_for_bits(65) == 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            packing.words_for_bits(-1)


class TestPackUnpackRoundTrip:
    @pytest.mark.parametrize("n_bits", [1, 7, 8, 63, 64, 65, 128, 200])
    def test_round_trip(self, n_bits):
        rng = np.random.default_rng(n_bits)
        dense = (rng.random((5, n_bits)) < 0.5).astype(np.uint8)
        packed = packing.pack_bits(dense)
        assert packed.dtype == np.uint64
        assert packed.shape == (5, packing.words_for_bits(n_bits))
        np.testing.assert_array_equal(packing.unpack_bits(packed, n_bits), dense)

    def test_bit_positions_lsb_first(self):
        dense = np.zeros((1, 70), dtype=np.uint8)
        dense[0, 0] = 1
        dense[0, 65] = 1
        packed = packing.pack_bits(dense)
        assert packed[0, 0] == 1
        assert packed[0, 1] == 2  # bit 65 -> word 1, offset 1

    def test_scalar_rejected(self):
        with pytest.raises(ValueError):
            packing.pack_bits(np.uint8(1))

    def test_multidimensional_leading_axes(self):
        rng = np.random.default_rng(3)
        dense = (rng.random((2, 3, 90)) < 0.4).astype(np.uint8)
        packed = packing.pack_bits(dense)
        assert packed.shape == (2, 3, 2)
        np.testing.assert_array_equal(packing.unpack_bits(packed, 90), dense)

    @given(st.integers(1, 150), st.integers(0, 2**32 - 1))
    @settings(max_examples=50, deadline=None)
    def test_round_trip_property(self, n_bits, seed):
        rng = np.random.default_rng(seed)
        dense = (rng.random((3, n_bits)) < 0.5).astype(np.uint8)
        packed = packing.pack_bits(dense)
        np.testing.assert_array_equal(packing.unpack_bits(packed, n_bits), dense)


class TestPopcount:
    def test_popcount_total(self):
        dense = np.array([[1, 0, 1, 1], [0, 0, 0, 1]], dtype=np.uint8)
        assert packing.popcount(packing.pack_bits(dense)) == 4

    def test_popcount_rows(self):
        dense = np.array([[1, 0, 1, 1], [0, 0, 0, 1]], dtype=np.uint8)
        np.testing.assert_array_equal(
            packing.popcount_rows(packing.pack_bits(dense)), [3, 1]
        )

    def test_popcount_matches_dense_sum(self):
        rng = np.random.default_rng(9)
        dense = (rng.random((7, 130)) < 0.3).astype(np.uint8)
        assert packing.popcount(packing.pack_bits(dense)) == int(dense.sum())


class TestSliceBits:
    @pytest.mark.parametrize(
        "n_bits,start,stop",
        [
            (10, 0, 10),
            (10, 2, 7),
            (100, 0, 64),
            (100, 64, 100),
            (100, 60, 70),
            (200, 63, 129),
            (200, 1, 200),
            (64, 0, 0),
        ],
    )
    def test_matches_dense_slice(self, n_bits, start, stop):
        rng = np.random.default_rng(n_bits + start + stop)
        dense = (rng.random((4, n_bits)) < 0.5).astype(np.uint8)
        packed = packing.pack_bits(dense)
        sliced = packing.slice_bits(packed, start, stop)
        np.testing.assert_array_equal(
            packing.unpack_bits(sliced, stop - start), dense[:, start:stop]
        )

    def test_padding_bits_cleared(self):
        dense = np.ones((1, 128), dtype=np.uint8)
        sliced = packing.slice_bits(packing.pack_bits(dense), 3, 10)
        # 7 set bits, no garbage above.
        assert packing.popcount(sliced) == 7

    def test_invalid_range_rejected(self):
        packed = packing.pack_bits(np.ones((1, 10), dtype=np.uint8))
        with pytest.raises(ValueError):
            packing.slice_bits(packed, 5, 3)

    @given(st.integers(1, 200), st.data())
    @settings(max_examples=50, deadline=None)
    def test_slice_property(self, n_bits, data):
        start = data.draw(st.integers(0, n_bits))
        stop = data.draw(st.integers(start, n_bits))
        rng = np.random.default_rng(n_bits * 1000 + start)
        dense = (rng.random((2, n_bits)) < 0.5).astype(np.uint8)
        sliced = packing.slice_bits(packing.pack_bits(dense), start, stop)
        np.testing.assert_array_equal(
            packing.unpack_bits(sliced, stop - start), dense[:, start:stop]
        )


class TestMasks:
    def test_mask_round_trip(self):
        indices = [0, 3, 17, 63, 64, 100]
        mask = packing.mask_from_indices(indices)
        assert packing.indices_from_mask(mask) == indices

    def test_empty_mask(self):
        assert packing.mask_from_indices([]) == 0
        assert packing.indices_from_mask(0) == []

    def test_single_bit(self):
        assert packing.mask_from_indices([5]) == 32


class TestSetGetBit:
    def test_set_then_get(self):
        packed = packing.packed_zeros((3,), 100)
        packing.set_bit(packed, 1, 70, 1)
        assert packing.get_bit(packed, 1, 70) == 1
        assert packing.get_bit(packed, 1, 69) == 0
        assert packing.get_bit(packed, 0, 70) == 0

    def test_clear_bit(self):
        packed = packing.packed_zeros((1,), 64)
        packing.set_bit(packed, 0, 10, 1)
        packing.set_bit(packed, 0, 10, 0)
        assert packing.get_bit(packed, 0, 10) == 0
