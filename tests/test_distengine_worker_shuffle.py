"""Worker-side bucketed shuffle plane vs the legacy driver-routed path.

The central contract: ``ClusterConfig(worker_shuffle=True)`` (the default)
must produce bit-identical result partitions and identical SHUFFLE ledger
charges to the legacy driver-side per-pair loop, for every partition shape
— empty partitions, growing/shrinking ``n_partitions``, keys duplicated
across every source — on the serial, thread, and process backends, with
and without a memory budget.  A hypothesis property pins the equivalence
over randomized keyed datasets.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distengine import ClusterConfig, SimulatedRuntime, TransferKind

BACKENDS = ["serial", "thread", "process"]


def _copy(value):
    return value.copy() if hasattr(value, "copy") else value


def _add(left, right):
    return left + right


def _normalize(partitions):
    """Partition structure with ndarray values made comparable."""
    return [
        [
            (key, value.tolist() if isinstance(value, np.ndarray) else value)
            for key, value in partition
        ]
        for partition in partitions
    ]


def _combine(
    data,
    n_source,
    n_target=None,
    worker_shuffle=True,
    backend="serial",
    memory_budget=None,
):
    """One combine_by_key run; returns (partitions, shuffle bytes, runtime facts)."""
    runtime = SimulatedRuntime(
        ClusterConfig(
            n_machines=2, cores_per_machine=2, backend=backend, n_workers=2,
            worker_shuffle=worker_shuffle, memory_budget=memory_budget,
        )
    )
    try:
        rdd = runtime.parallelize(data, n_partitions=n_source, name="kv")
        out = rdd.combine_by_key(_copy, _add, _add, n_partitions=n_target)
        partitions = out.glom()
        shuffle_bytes = runtime.ledger.bytes_of_kind(TransferKind.SHUFFLE)
        counters = runtime.metrics.counters()
        return _normalize(partitions), shuffle_bytes, counters
    finally:
        runtime.close()


def _array_data(n_items, n_keys=7):
    return [
        (i % n_keys, np.arange(4, dtype=np.int64) + i) for i in range(n_items)
    ]


class TestWorkerVsDriverEquivalence:
    def test_partitions_and_bytes_identical(self):
        data = _array_data(120)
        worker, worker_bytes, _ = _combine(data, 6, worker_shuffle=True)
        legacy, legacy_bytes, _ = _combine(data, 6, worker_shuffle=False)
        assert worker == legacy
        assert worker_bytes == legacy_bytes

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_backend_invariant(self, backend):
        data = _array_data(80)
        base, base_bytes, _ = _combine(data, 4)
        got, got_bytes, _ = _combine(data, 4, backend=backend)
        assert got == base
        assert got_bytes == base_bytes

    def test_integer_values(self):
        data = [(i % 5, i) for i in range(200)]
        worker, worker_bytes, _ = _combine(data, 8)
        legacy, legacy_bytes, _ = _combine(data, 8, worker_shuffle=False)
        assert worker == legacy
        assert worker_bytes == legacy_bytes

    def test_routing_timer_recorded_on_both_paths(self):
        data = _array_data(40)
        for worker_shuffle in (True, False):
            _, _, counters = _combine(data, 4, worker_shuffle=worker_shuffle)
            routing = counters.get("shuffle_routing_seconds_total", {})
            assert routing, "routing timer missing"
            assert all(value >= 0.0 for value in routing.values())


class TestEdgeCases:
    @pytest.mark.parametrize("worker_shuffle", [True, False])
    def test_empty_input(self, worker_shuffle):
        partitions, shuffle_bytes, _ = _combine(
            [], 4, worker_shuffle=worker_shuffle
        )
        assert partitions == [[] for _ in range(4)]
        assert shuffle_bytes == 0

    def test_more_partitions_than_items(self):
        data = [(0, 1), (1, 2)]
        worker, worker_bytes, _ = _combine(data, 8)
        legacy, legacy_bytes, _ = _combine(data, 8, worker_shuffle=False)
        assert worker == legacy
        assert worker_bytes == legacy_bytes

    def test_partition_growth(self):
        data = _array_data(30)
        worker, wb, _ = _combine(data, 2, n_target=8)
        legacy, lb, _ = _combine(data, 2, n_target=8, worker_shuffle=False)
        assert len(worker) == 8
        assert worker == legacy
        assert wb == lb

    def test_partition_shrink(self):
        data = _array_data(30)
        worker, wb, _ = _combine(data, 8, n_target=2)
        legacy, lb, _ = _combine(data, 8, n_target=2, worker_shuffle=False)
        assert len(worker) == 2
        assert worker == legacy
        assert wb == lb

    def test_single_target_partition(self):
        data = _array_data(30)
        worker, wb, _ = _combine(data, 4, n_target=1)
        legacy, lb, _ = _combine(data, 4, n_target=1, worker_shuffle=False)
        assert len(worker) == 1
        assert worker == legacy
        assert wb == lb

    def test_duplicate_keys_across_all_sources(self):
        # Every source partition holds every key, so every reduce bucket
        # merges combiners from every map output — the order-sensitivity
        # worst case for the segment splice.
        n_source = 6
        data = []
        for source in range(n_source):
            for key in range(10):
                data.append((key, np.full(3, source + 1, dtype=np.int64)))
        worker, wb, _ = _combine(data, n_source)
        legacy, lb, _ = _combine(data, n_source, worker_shuffle=False)
        assert worker == legacy
        assert wb == lb

    def test_none_values_and_string_keys(self):
        data = [(f"k{i % 3}", i) for i in range(20)] + [("k0", 0)]
        worker, wb, _ = _combine(data, 3)
        legacy, lb, _ = _combine(data, 3, worker_shuffle=False)
        assert worker == legacy
        assert wb == lb


class TestBudgetedWorkerShuffle:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_spill_results_identical(self, backend):
        data = _array_data(200)
        base, _, _ = _combine(data, 8)
        spilled, _, counters = _combine(
            data, 8, backend=backend, memory_budget=2000
        )
        assert spilled == base
        spills = counters.get("shuffle_spill_total", {})
        assert sum(spills.values()) > 0, "tiny budget must force spill runs"

    def test_spill_counts_backend_invariant(self):
        data = _array_data(200)
        totals = []
        for backend in BACKENDS:
            _, _, counters = _combine(
                data, 8, backend=backend, memory_budget=2000
            )
            totals.append(sum(counters.get("shuffle_spill_total", {}).values()))
        assert totals[0] > 0
        assert totals == [totals[0]] * len(BACKENDS)

    def test_spill_bytes_metered(self):
        data = _array_data(200)
        runtime = SimulatedRuntime(
            ClusterConfig(memory_budget=2000)
        )
        try:
            rdd = runtime.parallelize(data, n_partitions=8, name="kv")
            rdd.combine_by_key(_copy, _add, _add).glom()
            by_stage = dict(runtime.ledger.by_stage)
            spill_stages = [s for s in by_stage if s.endswith(".spill")]
            fetch_stages = [s for s in by_stage if s.endswith(".fetch")]
            assert spill_stages and fetch_stages
            assert runtime.ledger.bytes_of_kind(TransferKind.SPILL) > 0
        finally:
            runtime.close()

    def test_no_spill_without_budget(self):
        data = _array_data(60)
        _, _, counters = _combine(data, 4)
        assert not counters.get("shuffle_spill_total", {})


@settings(max_examples=25, deadline=None)
@given(
    items=st.lists(
        st.tuples(st.integers(-50, 50), st.integers(-1000, 1000)),
        max_size=120,
    ),
    n_source=st.integers(1, 6),
    n_target=st.integers(1, 6),
)
def test_worker_routing_matches_driver_routing(items, n_source, n_target):
    """Property: identical buckets and identical ledger totals on both paths."""
    worker, worker_bytes, _ = _combine(
        items, n_source, n_target=n_target, worker_shuffle=True
    )
    legacy, legacy_bytes, _ = _combine(
        items, n_source, n_target=n_target, worker_shuffle=False
    )
    assert worker == legacy
    assert worker_bytes == legacy_bytes
