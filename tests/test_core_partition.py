"""Unit tests for vertical partitioning and PVM-boundary blocks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitops import packing
from repro.core import (
    Block,
    BlockType,
    build_partition_data,
    make_partition_plans,
    pack_partition,
    split_unfolding_coordinates,
)
from repro.tensor import PackedUnfolding, SparseBoolTensor, unfold


class TestBlock:
    def test_full_block(self):
        block = Block(pvm_index=2, start=0, stop=8, width=8)
        assert block.is_full
        assert block.block_type is BlockType.FULL
        assert block.n_cols == 8

    def test_prefix_block(self):
        assert Block(0, 0, 5, 8).block_type is BlockType.PREFIX

    def test_suffix_block(self):
        assert Block(0, 3, 8, 8).block_type is BlockType.SUFFIX

    def test_interior_block(self):
        assert Block(0, 2, 6, 8).block_type is BlockType.INTERIOR

    @pytest.mark.parametrize("start,stop", [(3, 3), (5, 3), (-1, 2), (0, 9)])
    def test_invalid_ranges(self, start, stop):
        with pytest.raises(ValueError):
            Block(0, start, stop, 8)


class TestMakePartitionPlans:
    def test_covers_all_columns_without_overlap(self):
        plans = make_partition_plans(block_count=7, block_width=5, n_partitions=4)
        assert plans[0].col_start == 0
        assert plans[-1].col_stop == 35
        for left, right in zip(plans, plans[1:]):
            assert left.col_stop == right.col_start

    def test_sizes_differ_by_at_most_one(self):
        plans = make_partition_plans(block_count=7, block_width=5, n_partitions=4)
        sizes = [plan.n_cols for plan in plans]
        assert max(sizes) - min(sizes) <= 1

    def test_blocks_tile_each_partition(self):
        plans = make_partition_plans(block_count=7, block_width=5, n_partitions=4)
        for plan in plans:
            total = sum(block.n_cols for block in plan.blocks)
            assert total == plan.n_cols

    def test_blocks_respect_pvm_boundaries(self):
        plans = make_partition_plans(block_count=10, block_width=6, n_partitions=7)
        for plan in plans:
            cursor = plan.col_start
            for block in plan.blocks:
                absolute_start = block.pvm_index * block.width + block.start
                assert absolute_start == cursor
                cursor += block.n_cols
            assert cursor == plan.col_stop

    def test_lemma3_at_most_three_block_types(self):
        # Lemma 3: a partition can have at most three types of blocks.
        for block_count in (1, 3, 7, 16):
            for width in (1, 4, 9):
                for n_partitions in (1, 2, 5, 13):
                    plans = make_partition_plans(block_count, width, n_partitions)
                    for plan in plans:
                        assert len(plan.block_types()) <= 3

    def test_more_partitions_than_columns(self):
        plans = make_partition_plans(block_count=2, block_width=2, n_partitions=10)
        assert len(plans) == 10
        non_empty = [plan for plan in plans if plan.n_cols > 0]
        assert len(non_empty) == 4
        empty = [plan for plan in plans if plan.n_cols == 0]
        for plan in empty:
            assert plan.blocks == ()

    def test_single_partition_has_full_blocks_only(self):
        plans = make_partition_plans(block_count=5, block_width=4, n_partitions=1)
        assert len(plans) == 1
        assert all(block.is_full for block in plans[0].blocks)
        assert len(plans[0].blocks) == 5

    @pytest.mark.parametrize(
        "block_count,width,n_partitions", [(0, 1, 1), (1, 0, 1), (1, 1, 0)]
    )
    def test_invalid_arguments(self, block_count, width, n_partitions):
        with pytest.raises(ValueError):
            make_partition_plans(block_count, width, n_partitions)

    @given(st.integers(1, 12), st.integers(1, 12), st.integers(1, 12))
    @settings(max_examples=60, deadline=None)
    def test_partition_invariants_property(self, block_count, width, n_partitions):
        plans = make_partition_plans(block_count, width, n_partitions)
        assert len(plans) == n_partitions
        assert plans[-1].col_stop == block_count * width
        for plan in plans:
            assert len(plan.block_types()) <= 3
            assert sum(block.n_cols for block in plan.blocks) == plan.n_cols


class TestBuildPartitionData:
    def _packed(self, shape, seed, mode=0):
        rng = np.random.default_rng(seed)
        dense = (rng.random(shape) < 0.3).astype(np.uint8)
        tensor = SparseBoolTensor.from_dense(dense)
        return PackedUnfolding(unfold(tensor, mode)), tensor

    def test_blocks_carry_correct_bits(self):
        packed, tensor = self._packed((6, 7, 8), seed=1)
        plans = make_partition_plans(packed.block_count, packed.block_width, 5)
        data = build_partition_data(packed, plans)
        unfolded = packed.to_dense()
        for part in data:
            for block, words in zip(part.plan.blocks, part.block_words):
                lo = block.pvm_index * block.width + block.start
                hi = block.pvm_index * block.width + block.stop
                np.testing.assert_array_equal(
                    packing.unpack_bits(words, block.n_cols), unfolded[:, lo:hi]
                )

    def test_total_nonzeros_preserved(self):
        packed, tensor = self._packed((5, 9, 4), seed=2)
        plans = make_partition_plans(packed.block_count, packed.block_width, 3)
        data = build_partition_data(packed, plans)
        total = sum(
            packing.popcount(words) for part in data for words in part.block_words
        )
        assert total == tensor.nnz

    def test_nbytes_positive(self):
        packed, _ = self._packed((4, 4, 4), seed=3)
        plans = make_partition_plans(packed.block_count, packed.block_width, 2)
        data = build_partition_data(packed, plans)
        assert all(part.nbytes > 0 for part in data)


class TestSparsePartitioning:
    """The shuffle-then-pack path of Algorithm 3 (what DBTF actually uses)."""

    def _unfolding(self, shape, seed, mode=0, density=0.3):
        rng = np.random.default_rng(seed)
        dense = (rng.random(shape) < density).astype(np.uint8)
        tensor = SparseBoolTensor.from_dense(dense)
        return unfold(tensor, mode), tensor

    def test_every_nonzero_lands_in_exactly_one_partition(self):
        unfolding, tensor = self._unfolding((6, 7, 8), seed=0)
        plans = make_partition_plans(unfolding.block_count, unfolding.block_width, 5)
        splits = split_unfolding_coordinates(unfolding, plans)
        assert sum(split.nnz for split in splits) == tensor.nnz
        for split in splits:
            columns = split.block_ids * unfolding.block_width + split.offsets
            assert (columns >= split.plan.col_start).all()
            assert (columns < split.plan.col_stop).all()

    def test_shuffle_bytes_proportional_to_nnz(self):
        # Lemma 6: the shuffled volume is O(|X|), not O(cells).
        unfolding, tensor = self._unfolding((8, 8, 8), seed=1, density=0.1)
        plans = make_partition_plans(unfolding.block_count, unfolding.block_width, 3)
        splits = split_unfolding_coordinates(unfolding, plans)
        total = sum(split.nbytes for split in splits)
        assert total == tensor.nnz * 3 * 8  # three int64 per nonzero

    @pytest.mark.parametrize("shape", [(6, 7, 8), (5, 70, 3), (9, 3, 11)])
    @pytest.mark.parametrize("n_partitions", [1, 4, 9])
    def test_pack_partition_matches_dense_path(self, shape, n_partitions):
        unfolding, tensor = self._unfolding(shape, seed=2)
        packed = PackedUnfolding(unfolding)
        plans = make_partition_plans(
            unfolding.block_count, unfolding.block_width, n_partitions
        )
        dense_path = build_partition_data(packed, plans)
        sparse_path = [
            pack_partition(split)
            for split in split_unfolding_coordinates(unfolding, plans)
        ]
        for expected, actual in zip(dense_path, sparse_path):
            assert expected.plan == actual.plan
            for left, right in zip(expected.block_words, actual.block_words):
                np.testing.assert_array_equal(left, right)

    def test_empty_partition_packs_to_no_blocks(self):
        unfolding, _ = self._unfolding((2, 2, 2), seed=3)
        plans = make_partition_plans(unfolding.block_count, unfolding.block_width, 10)
        splits = split_unfolding_coordinates(unfolding, plans)
        empty = [s for s in splits if s.plan.n_cols == 0]
        assert empty
        for split in empty:
            assert pack_partition(split).block_words == []
