"""Unit tests for the networkx graph views."""

import numpy as np
import pytest

from repro.datasets import connected_nonzero_components, fiber_graph
from repro.tensor import SparseBoolTensor, outer_product


class TestFiberGraph:
    def test_nodes_are_nonzeros(self):
        tensor = SparseBoolTensor.from_nonzeros((3, 3, 3), [(0, 0, 0), (1, 1, 1)])
        graph = fiber_graph(tensor)
        assert set(graph.nodes) == {(0, 0, 0), (1, 1, 1)}

    def test_fiber_members_form_clique(self):
        tensor = SparseBoolTensor.from_nonzeros(
            (4, 2, 2), [(0, 1, 1), (1, 1, 1), (3, 1, 1)]
        )
        graph = fiber_graph(tensor)
        assert graph.number_of_edges() == 3  # triangle on the mode-0 fiber

    def test_disconnected_nonzeros_have_no_edge(self):
        tensor = SparseBoolTensor.from_nonzeros((3, 3, 3), [(0, 0, 0), (1, 1, 1)])
        graph = fiber_graph(tensor)
        assert graph.number_of_edges() == 0

    def test_edges_tagged_with_mode(self):
        tensor = SparseBoolTensor.from_nonzeros((2, 2, 2), [(0, 0, 0), (0, 0, 1)])
        graph = fiber_graph(tensor)
        assert graph.edges[(0, 0, 0), (0, 0, 1)]["mode"] == 2

    def test_non_three_way_rejected(self):
        with pytest.raises(ValueError):
            fiber_graph(SparseBoolTensor.empty((2, 2)))

    def test_dense_block_is_connected(self):
        import networkx as nx

        block = outer_product([1, 1, 0], [1, 1, 0], [1, 1, 0])
        graph = fiber_graph(block)
        assert nx.is_connected(graph)


class TestConnectedComponents:
    def test_two_disjoint_blocks_split(self):
        first = outer_product([1, 1, 0, 0], [1, 1, 0, 0], [1, 1, 0, 0])
        second = outer_product([0, 0, 1, 1], [0, 0, 1, 1], [0, 0, 1, 1])
        tensor = first.boolean_or(second)
        components = connected_nonzero_components(tensor)
        assert len(components) == 2
        assert components[0].nnz == 8
        assert components[1].nnz == 8
        assert components[0].boolean_or(components[1]) == tensor

    def test_sorted_largest_first(self):
        big = outer_product([1, 1, 1, 0], [1, 1, 1, 0], [1, 1, 1, 0])
        small = SparseBoolTensor.from_nonzeros((4, 4, 4), [(3, 3, 3)])
        components = connected_nonzero_components(big.boolean_or(small))
        assert components[0].nnz == 27
        assert components[1].nnz == 1

    def test_empty_tensor(self):
        assert connected_nonzero_components(SparseBoolTensor.empty((2, 2, 2))) == []
