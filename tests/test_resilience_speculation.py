"""Speculative execution: straggler detection, makespan effect, determinism."""

import pytest

from repro.distengine import (
    ClusterConfig,
    FaultInjector,
    RetryPolicy,
    SimulatedRuntime,
    SpeculationConfig,
    plan_speculation,
)


def _identity(index, items):
    return items


class TestSpeculationConfig:
    def test_defaults(self):
        config = SpeculationConfig()
        assert config.multiplier == 1.5
        assert config.min_tasks == 2

    @pytest.mark.parametrize(
        "kwargs",
        [{"multiplier": 1.0}, {"multiplier": 0.5}, {"min_tasks": 1}],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SpeculationConfig(**kwargs)


class TestPlanSpeculation:
    def test_no_failures_means_no_speculation(self):
        plan = plan_speculation(
            [1.0, 1.0, 50.0], [0.0, 0.0, 0.0], [0, 0, 0], SpeculationConfig()
        )
        assert plan.speculated == ()
        assert plan.effective_durations == (1.0, 1.0, 50.0)

    def test_too_few_tasks(self):
        plan = plan_speculation(
            [10.0], [5.0], [3], SpeculationConfig(min_tasks=2)
        )
        assert plan.speculated == ()
        # Retry waits still count against the lone task's duration.
        assert plan.effective_durations == (15.0,)

    def test_straggler_capped_by_duplicate(self):
        # Task 2 failed twice and waited 8s: signal 1 + 2 + 8/8 = 4 vs a
        # median signal of 1, so it is speculated.  Its clean estimate is
        # 9.0 / (1 + 2) = 3.0; the duplicate launches at 1.5 * median(clean)
        # = 1.5 and finishes at 4.5, well under 9 + 8 = 17.
        plan = plan_speculation(
            [1.0, 1.0, 9.0, 1.0],
            [0.0, 0.0, 8.0, 0.0],
            [0, 0, 2, 0],
            SpeculationConfig(multiplier=1.5),
        )
        assert plan.speculated == (2,)
        assert plan.effective_durations[2] == pytest.approx(4.5)
        assert plan.effective_durations[:2] == (1.0, 1.0)

    def test_duplicate_never_hurts(self):
        durations = [1.0, 2.0, 30.0, 1.5]
        waits = [0.0, 0.0, 12.0, 0.0]
        plan = plan_speculation(
            durations, waits, [0, 0, 3, 0], SpeculationConfig()
        )
        for i, effective in enumerate(plan.effective_durations):
            assert effective <= durations[i] + waits[i] + 1e-12

    def test_clean_task_not_speculated_even_if_slow(self):
        # A slow task with zero failures is skew, not a fault straggler.
        plan = plan_speculation(
            [1.0, 1.0, 100.0], [0.0, 0.0, 0.0], [0, 0, 0],
            SpeculationConfig(),
        )
        assert plan.speculated == ()

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            plan_speculation([1.0, 2.0], [0.0], [0, 0], SpeculationConfig())
        with pytest.raises(ValueError):
            plan_speculation([1.0, 2.0], [0.0, 0.0], [0], SpeculationConfig())

    def test_deterministic(self):
        args = (
            [1.0, 1.0, 9.0, 1.0],
            [0.0, 0.0, 8.0, 0.0],
            [0, 0, 2, 0],
            SpeculationConfig(),
        )
        assert plan_speculation(*args) == plan_speculation(*args)


def _run(backend: str, speculation=None) -> SimulatedRuntime:
    runtime = SimulatedRuntime(
        ClusterConfig(
            n_machines=2,
            cores_per_machine=2,
            backend=backend,
            speculation=speculation,
        ),
        fault_injector=FaultInjector(failure_rate=0.4, max_retries=10, seed=3),
        retry_policy=RetryPolicy(max_retries=10, seed=0),
    )
    try:
        data = runtime.parallelize(list(range(64)), n_partitions=8)
        data.map_partitions_with_index(_identity, name="work").collect()
    finally:
        runtime.close()
    return runtime


class TestRuntimeIntegration:
    def test_counters_and_report(self):
        runtime = _run("serial", SpeculationConfig())
        report = runtime.report()
        counters = runtime.metrics.counters()
        speculated = sum(counters["tasks_speculated_total"].values())
        wins = sum(counters["speculative_wins_total"].values())
        assert report.tasks_speculated == speculated
        assert report.speculative_wins == wins
        assert speculated > 0  # the fault seed above must produce stragglers
        assert wins <= speculated

    def test_speculation_never_increases_makespan(self):
        baseline = _run("serial")
        speculated = _run("serial", SpeculationConfig())
        assert (
            speculated.simulated_time() <= baseline.simulated_time() + 1e-12
        )

    def test_speculated_counts_backend_invariant(self):
        counts = {}
        for backend in ("serial", "thread"):
            runtime = _run(backend, SpeculationConfig())
            counters = runtime.metrics.counters()
            counts[backend] = sum(
                counters["tasks_speculated_total"].values()
            )
        assert counts["serial"] == counts["thread"]
        assert counts["serial"] > 0

    def test_speculation_spans_emitted(self):
        runtime = SimulatedRuntime(
            ClusterConfig(
                backend="serial",
                speculation=SpeculationConfig(),
                tracing=True,
            ),
            fault_injector=FaultInjector(
                failure_rate=0.4, max_retries=10, seed=3
            ),
            retry_policy=RetryPolicy(max_retries=10, seed=0),
        )
        try:
            data = runtime.parallelize(list(range(64)), n_partitions=8)
            data.map_partitions_with_index(_identity, name="work").collect()
        finally:
            runtime.close()
        spans = [
            span
            for span in runtime.tracer.spans
            if span.kind == "speculation"
        ]
        assert spans
        counters = runtime.metrics.counters()
        assert len(spans) == sum(counters["tasks_speculated_total"].values())
        for span in spans:
            assert "won" in span.attrs

    def test_with_speculation_helper(self):
        config = ClusterConfig().with_speculation(
            SpeculationConfig(multiplier=2.0)
        )
        assert config.speculation.multiplier == 2.0
        assert ClusterConfig().speculation is None
