"""The shuffle spill writer and the budget-governed map-side spill path.

Unit tests pin the run-file wire format (independently pickled per-bucket
blobs addressed by out-of-band offsets, atomic writes, distinct paths per
(shuffle, map task, run)); integration tests drive ``combine_by_key`` under
a memory budget small enough that every map task spills, and assert the
merged results stay bit-identical to the unbudgeted run on all backends
while the run files themselves are cleaned up after the reduce.
"""

import os

import numpy as np
import pytest

from repro.distengine import ClusterConfig, SimulatedRuntime
from repro.storage import ShuffleSpillWriter, SpillRun, read_bucket

BACKENDS = ["serial", "thread", "process"]


def _copy(value):
    return value.copy() if hasattr(value, "copy") else value


def _add(left, right):
    return left + right


class TestShuffleSpillWriter:
    def test_round_trip(self, tmp_path):
        writer = ShuffleSpillWriter(str(tmp_path), shuffle_id=1, map_index=0)
        buckets = [
            [(0, np.arange(3)), (2, np.arange(2))],
            [],
            [(1, "text")],
        ]
        run = writer.write_run(buckets, [40, 0, 16])
        assert isinstance(run, SpillRun)
        assert run.n_buckets == 3
        for index, expected in enumerate(buckets):
            got = read_bucket(run.path, run.offsets[index], run.lengths[index])
            assert len(got) == len(expected)
            for (gk, gv), (ek, ev) in zip(got, expected):
                assert gk == ek
                if isinstance(ev, np.ndarray):
                    assert np.array_equal(gv, ev)
                else:
                    assert gv == ev

    def test_metadata_consistent(self, tmp_path):
        writer = ShuffleSpillWriter(str(tmp_path), shuffle_id=2, map_index=3)
        run = writer.write_run([[(1, 2)], [(3, 4)]], [16, 16])
        assert run.offsets[0] == 0
        assert run.offsets[1] == run.lengths[0]
        assert run.file_bytes == sum(run.lengths)
        assert run.file_bytes == os.path.getsize(run.path)
        assert run.pair_bytes == (16, 16)

    def test_distinct_run_paths(self, tmp_path):
        writer = ShuffleSpillWriter(str(tmp_path), shuffle_id=1, map_index=0)
        other = ShuffleSpillWriter(str(tmp_path), shuffle_id=1, map_index=1)
        paths = {
            writer.write_run([[(1, 1)]], [16]).path,
            writer.write_run([[(2, 2)]], [16]).path,
            other.write_run([[(3, 3)]], [16]).path,
        }
        assert len(paths) == 3

    def test_atomic_write_leaves_no_staging(self, tmp_path):
        writer = ShuffleSpillWriter(str(tmp_path), shuffle_id=1, map_index=0)
        writer.write_run([[(1, 1)]], [16])
        assert not [n for n in os.listdir(tmp_path) if n.endswith(".tmp")]

    def test_creates_directory(self, tmp_path):
        nested = os.path.join(str(tmp_path), "a", "b")
        writer = ShuffleSpillWriter(nested, shuffle_id=1, map_index=0)
        run = writer.write_run([[("k", 1)]], [9])
        assert os.path.exists(run.path)

    def test_empty_bucket_set(self, tmp_path):
        writer = ShuffleSpillWriter(str(tmp_path), shuffle_id=1, map_index=0)
        run = writer.write_run([[], []], [0, 0])
        assert read_bucket(run.path, run.offsets[0], run.lengths[0]) == []


class TestBudgetedCombineSpill:
    def _run(self, backend="serial", memory_budget=None):
        runtime = SimulatedRuntime(
            ClusterConfig(
                backend=backend, n_workers=2, memory_budget=memory_budget
            )
        )
        try:
            data = [
                (i % 11, np.arange(8, dtype=np.int64) * i)
                for i in range(300)
            ]
            rdd = runtime.parallelize(data, n_partitions=8, name="kv")
            out = rdd.combine_by_key(_copy, _add, _add).glom()
            result = [
                [(key, value.tolist()) for key, value in partition]
                for partition in out
            ]
            counters = runtime.metrics.counters()
            spill_dir = runtime.shuffle_spill_dir()
            leftover = (
                sorted(os.listdir(spill_dir))
                if spill_dir is not None and os.path.isdir(spill_dir)
                else []
            )
            return result, counters, leftover
        finally:
            runtime.close()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_spilled_run_bit_identical(self, backend):
        base, _, _ = self._run()
        spilled, counters, _ = self._run(backend=backend, memory_budget=3000)
        assert spilled == base
        assert sum(counters.get("shuffle_spill_total", {}).values()) > 0

    def test_run_files_removed_after_reduce(self):
        _, counters, leftover = self._run(memory_budget=3000)
        assert sum(counters.get("shuffle_spill_total", {}).values()) > 0
        assert leftover == []

    def test_budget_spill_events_counted(self):
        runtime = SimulatedRuntime(ClusterConfig(memory_budget=3000))
        try:
            data = [(i % 11, np.arange(8, dtype=np.int64)) for i in range(300)]
            rdd = runtime.parallelize(data, n_partitions=8, name="kv")
            rdd.combine_by_key(_copy, _add, _add).glom()
            spilled = runtime.metrics.counters().get("shuffle_spill_total", {})
            assert sum(spilled.values()) > 0
        finally:
            runtime.close()

    def test_threshold_scales_with_partition_count(self):
        # A generous budget split across few tasks must not spill; the same
        # working set under a tiny budget must.
        _, roomy, _ = self._run(memory_budget=10_000_000)
        _, tight, _ = self._run(memory_budget=3000)
        assert not roomy.get("shuffle_spill_total", {})
        assert sum(tight.get("shuffle_spill_total", {}).values()) > 0
