"""Unit tests for the shuffle ledger."""

import pytest

from repro.distengine import ShuffleLedger, TransferKind


class TestShuffleLedger:
    def test_record_and_totals(self):
        ledger = ShuffleLedger()
        ledger.record(TransferKind.SHUFFLE, "stage-a", 100)
        ledger.record(TransferKind.SHUFFLE, "stage-b", 50)
        ledger.record(TransferKind.BROADCAST, "stage-a", 10)
        assert ledger.total_bytes == 160
        assert ledger.bytes_of_kind(TransferKind.SHUFFLE) == 150
        assert ledger.bytes_of_kind(TransferKind.BROADCAST) == 10
        assert ledger.by_stage["stage-a"] == 110

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ShuffleLedger().record("teleport", "s", 1)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            ShuffleLedger().record(TransferKind.SHUFFLE, "s", -1)

    def test_missing_kind_reads_zero(self):
        assert ShuffleLedger().bytes_of_kind(TransferKind.COLLECT) == 0

    def test_reset(self):
        ledger = ShuffleLedger()
        ledger.record(TransferKind.COLLECT, "s", 5)
        ledger.reset()
        assert ledger.total_bytes == 0
        assert not ledger.by_stage

    def test_summary_has_all_kinds(self):
        ledger = ShuffleLedger()
        ledger.record(TransferKind.SHUFFLE, "s", 7)
        summary = ledger.summary()
        assert set(summary) == set(TransferKind.ALL)
        assert summary[TransferKind.SHUFFLE] == 7
        assert summary[TransferKind.BROADCAST] == 0
