"""Unit tests for the shuffle ledger and the byte-size estimators."""

import numpy as np
import pytest

from repro.distengine import (
    ShuffleLedger,
    TransferKind,
    estimate_bytes,
    estimate_bytes_cached,
    estimate_pair_bytes,
)


class TestShuffleLedger:
    def test_record_and_totals(self):
        ledger = ShuffleLedger()
        ledger.record(TransferKind.SHUFFLE, "stage-a", 100)
        ledger.record(TransferKind.SHUFFLE, "stage-b", 50)
        ledger.record(TransferKind.BROADCAST, "stage-a", 10)
        assert ledger.total_bytes == 160
        assert ledger.bytes_of_kind(TransferKind.SHUFFLE) == 150
        assert ledger.bytes_of_kind(TransferKind.BROADCAST) == 10
        assert ledger.by_stage["stage-a"] == 110

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ShuffleLedger().record("teleport", "s", 1)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            ShuffleLedger().record(TransferKind.SHUFFLE, "s", -1)

    def test_missing_kind_reads_zero(self):
        assert ShuffleLedger().bytes_of_kind(TransferKind.COLLECT) == 0

    def test_reset(self):
        ledger = ShuffleLedger()
        ledger.record(TransferKind.COLLECT, "s", 5)
        ledger.reset()
        assert ledger.total_bytes == 0
        assert not ledger.by_stage

    def test_summary_has_all_kinds(self):
        ledger = ShuffleLedger()
        ledger.record(TransferKind.SHUFFLE, "s", 7)
        summary = ledger.summary()
        assert set(summary) == set(TransferKind.ALL)
        assert summary[TransferKind.SHUFFLE] == 7
        assert summary[TransferKind.BROADCAST] == 0


class TestEstimatePairBytes:
    def test_matches_per_pair_sum(self):
        pairs = [
            (0, np.arange(5, dtype=np.int64)),
            ("key", [1, 2, 3]),
            ((1, 2), 3.5),
            (7, {"a": np.ones(2)}),
            (True, None),
        ]
        expected = sum(
            estimate_bytes(key) + estimate_bytes(value)
            for key, value in pairs
        )
        assert estimate_pair_bytes(pairs) == expected

    def test_empty(self):
        assert estimate_pair_bytes([]) == 0

    def test_fast_paths_exact(self):
        # The inlined int-key / ndarray-value fast paths must agree with
        # the recursive sizer bit-for-bit (ledger parity depends on it).
        pairs = [(i, np.full(3, i, dtype=np.uint64)) for i in range(50)]
        expected = sum(
            estimate_bytes(key) + estimate_bytes(value)
            for key, value in pairs
        )
        assert estimate_pair_bytes(pairs) == expected

    def test_accepts_generators(self):
        pairs = {1: np.arange(2), 2: np.arange(3)}
        assert estimate_pair_bytes(pairs.items()) == estimate_pair_bytes(
            list(pairs.items())
        )


class TestEstimateBytesCached:
    def test_matches_uncached(self):
        value = np.arange(100, dtype=np.int64)
        assert estimate_bytes_cached(value) == estimate_bytes(value)

    def test_repeat_hits_cache(self):
        value = np.arange(10)
        first = estimate_bytes_cached(value)
        assert estimate_bytes_cached(value) == first

    def test_distinct_objects_sized_separately(self):
        small = np.arange(2, dtype=np.int64)
        large = np.arange(200, dtype=np.int64)
        assert estimate_bytes_cached(small) == 16
        assert estimate_bytes_cached(large) == 1600

    def test_non_weakrefable_falls_through(self):
        payload = {"words": np.arange(4)}
        assert estimate_bytes_cached(payload) == estimate_bytes(payload)
        assert estimate_bytes_cached([1, 2]) == estimate_bytes([1, 2])

    def test_none_is_zero(self):
        assert estimate_bytes_cached(None) == 0

    def test_cache_evicts_on_collection(self):
        import gc

        from repro.distengine.shuffle import _SIZE_CACHE

        value = np.arange(64)
        estimate_bytes_cached(value)
        key = id(value)
        assert key in _SIZE_CACHE
        del value
        gc.collect()
        assert key not in _SIZE_CACHE

    def test_plain_instance_payload(self):
        class Payload:
            def __init__(self):
                self.matrix = np.ones((8, 8))
                self.name = "p"

        payload = Payload()
        assert estimate_bytes_cached(payload) == estimate_bytes(payload)
        # second call served from the memo, same answer
        assert estimate_bytes_cached(payload) == estimate_bytes(payload)
