"""Unit tests for tensor text I/O."""

import numpy as np
import pytest

from repro.tensor import SparseBoolTensor, load_tensor, random_tensor, save_tensor


class TestIO:
    def test_round_trip(self, tmp_path):
        rng = np.random.default_rng(0)
        tensor = random_tensor((6, 7, 8), density=0.1, rng=rng)
        path = tmp_path / "tensor.tns"
        save_tensor(tensor, path)
        assert load_tensor(path) == tensor

    def test_empty_tensor_round_trip(self, tmp_path):
        tensor = SparseBoolTensor.empty((3, 4, 5))
        path = tmp_path / "empty.tns"
        save_tensor(tensor, path)
        loaded = load_tensor(path)
        assert loaded == tensor
        assert loaded.shape == (3, 4, 5)

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "hand.tns"
        path.write_text("# shape 2 2 2\n\n# a comment\n0 0 0\n1 1 1\n")
        tensor = load_tensor(path)
        assert tensor.nnz == 2

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.tns"
        path.write_text("0 0 0\n")
        with pytest.raises(ValueError):
            load_tensor(path)

    def test_wrong_arity_rejected(self, tmp_path):
        path = tmp_path / "bad2.tns"
        path.write_text("# shape 2 2 2\n0 0\n")
        with pytest.raises(ValueError):
            load_tensor(path)

    def test_out_of_bounds_coordinate_rejected(self, tmp_path):
        path = tmp_path / "bad3.tns"
        path.write_text("# shape 2 2 2\n0 0 5\n")
        with pytest.raises(ValueError):
            load_tensor(path)
