"""Unit tests for factor-triple persistence."""

import numpy as np
import pytest

from repro.tensor import load_factors, random_factors, save_factors


class TestFactorsIO:
    def test_round_trip(self, tmp_path):
        rng = np.random.default_rng(0)
        factors = random_factors((6, 7, 8), rank=3, density=0.4, rng=rng)
        save_factors(factors, tmp_path / "factors")
        loaded = load_factors(tmp_path / "factors")
        assert loaded == factors

    def test_creates_directory(self, tmp_path):
        rng = np.random.default_rng(1)
        factors = random_factors((3, 3, 3), rank=1, density=0.5, rng=rng)
        target = tmp_path / "deep" / "nested"
        save_factors(factors, target)
        assert (target / "A.mtx").exists()
        assert (target / "B.mtx").exists()
        assert (target / "C.mtx").exists()

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_factors(tmp_path)

    def test_decomposition_survives_round_trip(self, tmp_path):
        from repro import dbtf, planted_tensor
        from repro.metrics import reconstruction_error

        rng = np.random.default_rng(2)
        tensor, _ = planted_tensor((12, 12, 12), rank=2, factor_density=0.3, rng=rng)
        result = dbtf(tensor, rank=2, seed=0, n_partitions=2)
        save_factors(result.factors, tmp_path / "run")
        loaded = load_factors(tmp_path / "run")
        assert reconstruction_error(tensor, loaded) == result.error
