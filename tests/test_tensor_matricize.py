"""Unit tests for mode-n matricization (Eq. 1 and Eq. 12 of the paper)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitops import BitMatrix, boolean_matmul, khatri_rao
from repro.tensor import (
    MODE_FACTOR_ROLES,
    SparseBoolTensor,
    fold,
    random_factors,
    tensor_from_factors,
    unfold,
)


def random_tensor_dense(shape, seed, density=0.3):
    rng = np.random.default_rng(seed)
    return (rng.random(shape) < density).astype(np.uint8)


def reference_unfold(dense, mode):
    """Straight transcription of Eq. (1), 0-based."""
    I, J, K = dense.shape
    if mode == 0:
        out = np.zeros((I, J * K), dtype=np.uint8)
        for i, j, k in np.argwhere(dense):
            out[i, j + k * J] = 1
    elif mode == 1:
        out = np.zeros((J, I * K), dtype=np.uint8)
        for i, j, k in np.argwhere(dense):
            out[j, i + k * I] = 1
    else:
        out = np.zeros((K, I * J), dtype=np.uint8)
        for i, j, k in np.argwhere(dense):
            out[k, i + j * I] = 1
    return out


class TestUnfold:
    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_matches_equation_one(self, mode):
        dense = random_tensor_dense((3, 4, 5), seed=mode)
        tensor = SparseBoolTensor.from_dense(dense)
        unfolding = unfold(tensor, mode)
        np.testing.assert_array_equal(
            unfolding.to_dense(), reference_unfold(dense, mode)
        )

    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_shape_metadata(self, mode):
        tensor = SparseBoolTensor.empty((3, 4, 5))
        unfolding = unfold(tensor, mode)
        expected_rows = (3, 4, 5)[mode]
        assert unfolding.n_rows == expected_rows
        assert unfolding.n_cols == 3 * 4 * 5 // expected_rows

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            unfold(SparseBoolTensor.empty((2, 2, 2)), 3)

    def test_non_three_way_rejected(self):
        with pytest.raises(ValueError):
            unfold(SparseBoolTensor.empty((2, 2)), 0)

    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_fold_inverts_unfold(self, mode):
        dense = random_tensor_dense((4, 3, 6), seed=10 + mode)
        tensor = SparseBoolTensor.from_dense(dense)
        assert fold(unfold(tensor, mode)) == tensor

    @given(
        st.tuples(st.integers(1, 5), st.integers(1, 5), st.integers(1, 5)),
        st.integers(0, 2),
        st.integers(0, 999),
    )
    @settings(max_examples=40, deadline=None)
    def test_unfold_fold_property(self, shape, mode, seed):
        dense = random_tensor_dense(shape, seed)
        tensor = SparseBoolTensor.from_dense(dense)
        assert fold(unfold(tensor, mode)) == tensor


class TestMatricizedDecomposition:
    """X_(n) must equal target ∘ (outer ⊙ inner)^T exactly for noise-free
    factor tensors (Eq. 12)."""

    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_exact_reconstruction_in_matricized_form(self, mode):
        rng = np.random.default_rng(17)
        factors = random_factors((4, 5, 6), rank=3, density=0.4, rng=rng)
        tensor = tensor_from_factors(factors)
        target_index, outer_index, inner_index = MODE_FACTOR_ROLES[mode]
        kr_product = khatri_rao(factors[outer_index], factors[inner_index])
        reconstructed = boolean_matmul(factors[target_index], kr_product.transpose())
        np.testing.assert_array_equal(
            unfold(tensor, mode).to_dense(), reconstructed.to_dense()
        )

    def test_block_structure(self):
        # Block b of the unfolding corresponds to outer-mode index b.
        dense = np.zeros((2, 3, 4), dtype=np.uint8)
        dense[1, 2, 3] = 1
        unfolding = unfold(SparseBoolTensor.from_dense(dense), 0)
        assert unfolding.rows.tolist() == [1]
        assert unfolding.block_ids.tolist() == [3]  # k
        assert unfolding.offsets.tolist() == [2]  # j
        assert unfolding.columns().tolist() == [2 + 3 * 3]
