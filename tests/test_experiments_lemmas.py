"""Tests for the Lemma 6-7 traffic-validation experiments."""

from repro.experiments import run_traffic_vs_iterations, run_traffic_vs_partitions


class TestTrafficVsIterations:
    def test_shuffle_is_one_off(self):
        table = run_traffic_vs_iterations(iterations=(1, 3), exponent=4, rank=3)
        shuffles = set(table.column("shuffle bytes"))
        assert len(shuffles) == 1  # Lemma 6: partitioning shuffles once

    def test_broadcast_grows_with_iterations(self):
        table = run_traffic_vs_iterations(iterations=(1, 4), exponent=4, rank=3)
        performed = [int(cell) for cell in table.column("performed T")]
        broadcasts = [int(cell) for cell in table.column("broadcast bytes")]
        if performed[1] > performed[0]:
            assert broadcasts[1] > broadcasts[0]

    def test_reports_performed_iterations(self):
        table = run_traffic_vs_iterations(iterations=(2,), exponent=4, rank=3)
        performed = int(table.column("performed T")[0])
        assert 1 <= performed <= 2


class TestTrafficVsPartitions:
    def test_collect_grows_with_partitions(self):
        table = run_traffic_vs_partitions(
            partition_counts=(2, 16), exponent=4, rank=3
        )
        collects = [int(cell) for cell in table.column("collect bytes")]
        assert collects[1] > collects[0]  # Lemma 7: O(N·I) error collection

    def test_row_per_partition_count(self):
        table = run_traffic_vs_partitions(
            partition_counts=(2, 4, 8), exponent=4, rank=2
        )
        assert [row[0] for row in table.rows] == ["2", "4", "8"]
