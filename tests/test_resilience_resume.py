"""Kill-and-resume equivalence for all three solvers.

A run killed at iteration ``k`` and resumed from its latest checkpoint must
be bit-identical to one that was never interrupted — factors, error trace,
and convergence flag — under every backend.  The kill is simulated by
raising ``KeyboardInterrupt`` immediately after the snapshot for step ``k``
hits disk, which is exactly what a real SIGINT between iterations looks
like to the on-disk state.
"""

import json
import os

import numpy as np
import pytest

from repro.core import DbtfConfig, dbtf
from repro.distengine import ClusterConfig, SimulatedRuntime
from repro.nway import NwayCpConfig, cp_nway
from repro.resilience import (
    CheckpointConfig,
    CheckpointManager,
    CheckpointMismatchError,
)
from repro.tensor import add_additive_noise, planted_tensor
from repro.tucker import BooleanTuckerConfig, boolean_tucker

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "goldens")
META_GOLDEN_PATH = os.path.join(GOLDEN_DIR, "dbtf_checkpoint_meta.json")


def _noisy_tensor():
    """A planted tensor noisy enough that DBTF iterates several times."""
    rng = np.random.default_rng(11)
    tensor, _ = planted_tensor((10, 10, 10), rank=2, factor_density=0.3, rng=rng)
    return add_additive_noise(tensor, 0.1, rng)


def _install_kill(monkeypatch, at_step: int):
    """Make every CheckpointManager die right after saving step ``at_step``."""
    original = CheckpointManager.save

    def save_then_die(self, step, state):
        path = original(self, step, state)
        if step == at_step:
            raise KeyboardInterrupt(f"simulated kill after step {step}")
        return path

    monkeypatch.setattr(CheckpointManager, "save", save_then_die)


def _assert_same_factors(actual, expected):
    assert len(actual) == len(expected)
    for a, e in zip(actual, expected):
        assert a.n_rows == e.n_rows
        assert a.n_cols == e.n_cols
        assert (a.words == e.words).all()


class TestDbtfResume:
    def _run(self, tensor, backend, checkpoint=None):
        runtime = SimulatedRuntime(
            ClusterConfig(n_machines=2, cores_per_machine=2, backend=backend)
        )
        try:
            return dbtf(
                tensor,
                rank=2,
                max_iterations=6,
                n_partitions=3,
                seed=0,
                checkpoint=checkpoint,
                runtime=runtime,
            )
        finally:
            runtime.close()

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_kill_and_resume_bit_identical(
        self, tmp_path, monkeypatch, backend
    ):
        tensor = _noisy_tensor()
        baseline = self._run(tensor, backend)
        assert len(baseline.errors_per_iteration) > 2  # kill point must exist

        directory = str(tmp_path / backend)
        _install_kill(monkeypatch, at_step=1)
        with pytest.raises(KeyboardInterrupt):
            self._run(
                tensor, backend, CheckpointConfig(directory=directory)
            )
        monkeypatch.undo()

        resumed = self._run(
            tensor,
            backend,
            CheckpointConfig(directory=directory, resume=True),
        )
        assert resumed.errors_per_iteration == baseline.errors_per_iteration
        assert resumed.error == baseline.error
        assert resumed.converged == baseline.converged
        _assert_same_factors(resumed.factors, baseline.factors)

    def test_checkpointing_does_not_change_result(self, tmp_path):
        tensor = _noisy_tensor()
        baseline = self._run(tensor, "serial")
        checkpointed = self._run(
            tensor, "serial", CheckpointConfig(directory=str(tmp_path))
        )
        assert (
            checkpointed.errors_per_iteration == baseline.errors_per_iteration
        )
        _assert_same_factors(checkpointed.factors, baseline.factors)

    def test_resume_with_empty_directory_is_fresh_run(self, tmp_path):
        tensor = _noisy_tensor()
        baseline = self._run(tensor, "serial")
        resumed = self._run(
            tensor,
            "serial",
            CheckpointConfig(directory=str(tmp_path), resume=True),
        )
        assert resumed.errors_per_iteration == baseline.errors_per_iteration

    def test_mismatched_config_refuses_resume(self, tmp_path, monkeypatch):
        tensor = _noisy_tensor()
        directory = str(tmp_path)
        _install_kill(monkeypatch, at_step=1)
        with pytest.raises(KeyboardInterrupt):
            self._run(tensor, "serial", CheckpointConfig(directory=directory))
        monkeypatch.undo()
        runtime = SimulatedRuntime(ClusterConfig(backend="serial"))
        try:
            with pytest.raises(CheckpointMismatchError):
                dbtf(
                    tensor,
                    rank=3,  # different rank → different fingerprint
                    max_iterations=6,
                    n_partitions=3,
                    seed=0,
                    checkpoint=CheckpointConfig(
                        directory=directory, resume=True
                    ),
                    runtime=runtime,
                )
        finally:
            runtime.close()

    def test_larger_budget_can_resume(self, tmp_path, monkeypatch):
        # Stopping criteria are excluded from the fingerprint: extending
        # max_iterations on resume continues the same trajectory.
        tensor = _noisy_tensor()
        directory = str(tmp_path)
        _install_kill(monkeypatch, at_step=1)
        with pytest.raises(KeyboardInterrupt):
            self._run(tensor, "serial", CheckpointConfig(directory=directory))
        monkeypatch.undo()
        runtime = SimulatedRuntime(ClusterConfig(backend="serial"))
        try:
            result = dbtf(
                tensor,
                rank=2,
                max_iterations=12,
                n_partitions=3,
                seed=0,
                checkpoint=CheckpointConfig(directory=directory, resume=True),
                runtime=runtime,
            )
        finally:
            runtime.close()
        baseline = self._run(tensor, "serial")
        # The shared prefix (up to the shorter run's length) is identical.
        shared = min(
            len(result.errors_per_iteration),
            len(baseline.errors_per_iteration),
        )
        assert (
            result.errors_per_iteration[:shared]
            == baseline.errors_per_iteration[:shared]
        )


class TestNwayResume:
    def _config(self, tmp_path=None, resume=False):
        checkpoint = None
        if tmp_path is not None:
            checkpoint = CheckpointConfig(directory=str(tmp_path), resume=resume)
        return NwayCpConfig(
            rank=2,
            max_iterations=4,
            n_initial_sets=3,
            seed=0,
            checkpoint=checkpoint,
        )

    def test_kill_and_resume_bit_identical(self, tmp_path, monkeypatch):
        rng = np.random.default_rng(5)
        tensor, _ = planted_tensor((8, 9, 10), rank=2, factor_density=0.3, rng=rng)
        baseline = cp_nway(tensor, config=self._config())

        _install_kill(monkeypatch, at_step=1)  # die after restart 1 of 3
        with pytest.raises(KeyboardInterrupt):
            cp_nway(tensor, config=self._config(tmp_path))
        monkeypatch.undo()

        resumed = cp_nway(tensor, config=self._config(tmp_path, resume=True))
        assert resumed.error == baseline.error
        assert resumed.errors_per_iteration == baseline.errors_per_iteration
        _assert_same_factors(resumed.factors, baseline.factors)


class TestTuckerResume:
    def _config(self, tmp_path=None, resume=False):
        checkpoint = None
        if tmp_path is not None:
            checkpoint = CheckpointConfig(directory=str(tmp_path), resume=resume)
        return BooleanTuckerConfig(
            core_shape=(2, 2, 2),
            max_iterations=4,
            n_initial_sets=2,
            seed=0,
            checkpoint=checkpoint,
        )

    def test_kill_and_resume_bit_identical(self, tmp_path, monkeypatch):
        rng = np.random.default_rng(5)
        tensor, _ = planted_tensor((8, 8, 8), rank=2, factor_density=0.3, rng=rng)
        tensor = add_additive_noise(tensor, 0.1, rng)
        baseline = boolean_tucker(tensor, config=self._config())

        # Step encoding is restart * max_iterations + iteration: step 5 is
        # mid-restart-1, so resume re-enters an interrupted restart.
        _install_kill(monkeypatch, at_step=5)
        with pytest.raises(KeyboardInterrupt):
            boolean_tucker(tensor, config=self._config(tmp_path))
        monkeypatch.undo()

        resumed = boolean_tucker(
            tensor, config=self._config(tmp_path, resume=True)
        )
        assert resumed.error == baseline.error
        assert resumed.errors_per_iteration == baseline.errors_per_iteration
        _assert_same_factors(resumed.factors, baseline.factors)
        assert (
            resumed.core.to_dense() == baseline.core.to_dense()
        ).all()


class TestCheckpointMetaGolden:
    """The on-disk checkpoint layout for a fixed-seed run is a contract.

    File names, step sequence, format version, and the config fingerprint
    must stay stable; any intentional change is re-recorded with
    ``pytest --update-goldens`` (the ``*.actual.json`` lands next to the
    golden on mismatch, for CI artifact upload).
    """

    def _meta(self, tmp_path) -> str:
        tensor = _noisy_tensor()
        directory = str(tmp_path / "meta")
        config = DbtfConfig(
            rank=2,
            max_iterations=6,
            n_partitions=3,
            seed=0,
            checkpoint=CheckpointConfig(directory=directory, keep_last=100),
        )
        runtime = SimulatedRuntime(ClusterConfig(backend="serial"))
        try:
            result = dbtf(tensor, config=config, runtime=runtime)
        finally:
            runtime.close()
        manager = CheckpointManager(
            config.checkpoint,
            # Re-derive through the public resume path: load_latest would
            # raise on a fingerprint mismatch, so reading the fingerprint
            # out of a saved file keeps this test honest.
            _read_fingerprint(directory),
        )
        meta = {
            "files": sorted(
                name
                for name in os.listdir(directory)
                if name.endswith(".ckpt")
            ),
            "steps": [step for step, _ in manager.checkpoints()],
            "fingerprint": manager.fingerprint,
            "format_version": 1,
            "n_iterations": len(result.errors_per_iteration),
        }
        return json.dumps(meta, indent=1, sort_keys=True) + "\n"

    def test_meta_matches_golden(self, tmp_path, update_goldens):
        actual = self._meta(tmp_path)
        if update_goldens:
            os.makedirs(GOLDEN_DIR, exist_ok=True)
            with open(META_GOLDEN_PATH, "w", encoding="utf-8") as handle:
                handle.write(actual)
            pytest.skip("golden updated")
        assert os.path.exists(META_GOLDEN_PATH), (
            "golden fixture missing; record it with "
            "pytest tests/test_resilience_resume.py --update-goldens"
        )
        with open(META_GOLDEN_PATH, encoding="utf-8") as handle:
            expected = handle.read()
        if actual != expected:
            actual_path = META_GOLDEN_PATH.replace(".json", ".actual.json")
            with open(actual_path, "w", encoding="utf-8") as handle:
                handle.write(actual)
            raise AssertionError(
                f"checkpoint metadata drifted from the golden fixture; "
                f"actual written to {actual_path} — if the change is "
                f"intentional, re-record with --update-goldens"
            )


def _read_fingerprint(directory: str) -> str:
    """Pull the fingerprint out of the newest checkpoint file directly."""
    import pickle

    from repro.resilience.checkpoint import _HEADER

    names = sorted(
        name for name in os.listdir(directory) if name.endswith(".ckpt")
    )
    with open(os.path.join(directory, names[-1]), "rb") as handle:
        handle.read(_HEADER.size)
        payload = pickle.loads(handle.read())
    return payload["fingerprint"]
