"""Unit tests for the raw-data importers."""

import numpy as np
import pytest

from repro.datasets import (
    bin_timestamps,
    from_timestamped_edges,
    from_triple_file,
    from_triples,
)


class TestFromTriples:
    def test_basic_mapping(self):
        labelled = from_triples(
            [("seoul", "capital-of", "south-korea"),
             ("paris", "capital-of", "france")]
        )
        assert labelled.tensor.shape == (2, 1, 2)
        assert labelled.tensor.nnz == 2
        assert labelled.labels[1] == ("capital-of",)

    def test_first_seen_order(self):
        labelled = from_triples([("b", "r", "x"), ("a", "r", "y")])
        assert labelled.labels[0] == ("b", "a")
        assert labelled.index_of(0, "b") == 0
        assert labelled.index_of(0, "a") == 1

    def test_duplicates_collapse(self):
        labelled = from_triples([("a", "r", "x")] * 3)
        assert labelled.tensor.nnz == 1

    def test_label_round_trip(self):
        labelled = from_triples([("a", "r", "x")])
        assert labelled.label_of(0, labelled.index_of(0, "a")) == "a"

    def test_unknown_label(self):
        labelled = from_triples([("a", "r", "x")])
        with pytest.raises(KeyError):
            labelled.index_of(0, "missing")

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError):
            from_triples([("a", "b")])

    def test_empty_input(self):
        labelled = from_triples([])
        assert labelled.tensor.nnz == 0
        assert labelled.tensor.shape == (1, 1, 1)


class TestFromTripleFile:
    def test_reads_whitespace_triples(self, tmp_path):
        path = tmp_path / "triples.txt"
        path.write_text("# knowledge base\nseoul capital-of korea\n\n"
                        "tokyo capital-of japan\n")
        labelled = from_triple_file(path)
        assert labelled.tensor.nnz == 2

    def test_custom_delimiter(self, tmp_path):
        path = tmp_path / "triples.csv"
        path.write_text("a,likes,b\nb,likes,a\n")
        labelled = from_triple_file(path, delimiter=",")
        assert labelled.tensor.nnz == 2

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("only two\n")
        with pytest.raises(ValueError):
            from_triple_file(path)


class TestBinTimestamps:
    def test_equal_width_bins(self):
        bins = bin_timestamps(np.array([0.0, 5.0, 10.0]), n_bins=2)
        np.testing.assert_array_equal(bins, [0, 1, 1])

    def test_constant_timestamps(self):
        bins = bin_timestamps(np.array([3.0, 3.0]), n_bins=4)
        np.testing.assert_array_equal(bins, [0, 0])

    def test_max_lands_in_last_bin(self):
        bins = bin_timestamps(np.linspace(0, 1, 100), n_bins=10)
        assert bins.max() == 9
        assert bins.min() == 0

    def test_empty(self):
        assert bin_timestamps(np.array([]), n_bins=3).shape == (0,)

    def test_invalid_bins(self):
        with pytest.raises(ValueError):
            bin_timestamps(np.array([1.0]), n_bins=0)


class TestFromTimestampedEdges:
    def test_shared_entity_space(self):
        labelled = from_timestamped_edges(
            [("alice", "bob", 0.0), ("bob", "carol", 10.0)], n_time_bins=2
        )
        assert labelled.tensor.shape == (3, 3, 2)
        assert labelled.labels[0] == labelled.labels[1]
        assert labelled.tensor.nnz == 2

    def test_time_binning_applied(self):
        labelled = from_timestamped_edges(
            [("a", "b", 0.0), ("a", "b", 100.0)], n_time_bins=2
        )
        # Same pair in two different windows: two distinct nonzeros.
        assert labelled.tensor.nnz == 2

    def test_factorizable_output(self):
        rng = np.random.default_rng(0)
        edges = [
            (f"u{rng.integers(0, 10)}", f"u{rng.integers(0, 10)}", float(t))
            for t in range(50)
        ]
        labelled = from_timestamped_edges(edges, n_time_bins=5)
        from repro import dbtf

        result = dbtf(labelled.tensor, rank=2, seed=0, n_partitions=2,
                      max_iterations=2)
        assert result.error <= labelled.tensor.nnz
