"""Unit tests for the raw-data importers."""

import numpy as np
import pytest

from repro.datasets import (
    bin_timestamps,
    from_matrix_market,
    from_slice_files,
    from_timestamped_edges,
    from_triple_file,
    from_triples,
    to_matrix_market,
    to_slice_files,
)
from repro.tensor import SparseBoolTensor


class TestFromTriples:
    def test_basic_mapping(self):
        labelled = from_triples(
            [("seoul", "capital-of", "south-korea"),
             ("paris", "capital-of", "france")]
        )
        assert labelled.tensor.shape == (2, 1, 2)
        assert labelled.tensor.nnz == 2
        assert labelled.labels[1] == ("capital-of",)

    def test_first_seen_order(self):
        labelled = from_triples([("b", "r", "x"), ("a", "r", "y")])
        assert labelled.labels[0] == ("b", "a")
        assert labelled.index_of(0, "b") == 0
        assert labelled.index_of(0, "a") == 1

    def test_duplicates_collapse(self):
        labelled = from_triples([("a", "r", "x")] * 3)
        assert labelled.tensor.nnz == 1

    def test_label_round_trip(self):
        labelled = from_triples([("a", "r", "x")])
        assert labelled.label_of(0, labelled.index_of(0, "a")) == "a"

    def test_unknown_label(self):
        labelled = from_triples([("a", "r", "x")])
        with pytest.raises(KeyError):
            labelled.index_of(0, "missing")

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError):
            from_triples([("a", "b")])

    def test_empty_input(self):
        labelled = from_triples([])
        assert labelled.tensor.nnz == 0
        assert labelled.tensor.shape == (1, 1, 1)


class TestFromTripleFile:
    def test_reads_whitespace_triples(self, tmp_path):
        path = tmp_path / "triples.txt"
        path.write_text("# knowledge base\nseoul capital-of korea\n\n"
                        "tokyo capital-of japan\n")
        labelled = from_triple_file(path)
        assert labelled.tensor.nnz == 2

    def test_custom_delimiter(self, tmp_path):
        path = tmp_path / "triples.csv"
        path.write_text("a,likes,b\nb,likes,a\n")
        labelled = from_triple_file(path, delimiter=",")
        assert labelled.tensor.nnz == 2

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("only two\n")
        with pytest.raises(ValueError):
            from_triple_file(path)


class TestBinTimestamps:
    def test_equal_width_bins(self):
        bins = bin_timestamps(np.array([0.0, 5.0, 10.0]), n_bins=2)
        np.testing.assert_array_equal(bins, [0, 1, 1])

    def test_constant_timestamps(self):
        bins = bin_timestamps(np.array([3.0, 3.0]), n_bins=4)
        np.testing.assert_array_equal(bins, [0, 0])

    def test_max_lands_in_last_bin(self):
        bins = bin_timestamps(np.linspace(0, 1, 100), n_bins=10)
        assert bins.max() == 9
        assert bins.min() == 0

    def test_empty(self):
        assert bin_timestamps(np.array([]), n_bins=3).shape == (0,)

    def test_invalid_bins(self):
        with pytest.raises(ValueError):
            bin_timestamps(np.array([1.0]), n_bins=0)


class TestFromTimestampedEdges:
    def test_shared_entity_space(self):
        labelled = from_timestamped_edges(
            [("alice", "bob", 0.0), ("bob", "carol", 10.0)], n_time_bins=2
        )
        assert labelled.tensor.shape == (3, 3, 2)
        assert labelled.labels[0] == labelled.labels[1]
        assert labelled.tensor.nnz == 2

    def test_time_binning_applied(self):
        labelled = from_timestamped_edges(
            [("a", "b", 0.0), ("a", "b", 100.0)], n_time_bins=2
        )
        # Same pair in two different windows: two distinct nonzeros.
        assert labelled.tensor.nnz == 2

    def test_factorizable_output(self):
        rng = np.random.default_rng(0)
        edges = [
            (f"u{rng.integers(0, 10)}", f"u{rng.integers(0, 10)}", float(t))
            for t in range(50)
        ]
        labelled = from_timestamped_edges(edges, n_time_bins=5)
        from repro import dbtf

        result = dbtf(labelled.tensor, rank=2, seed=0, n_partitions=2,
                      max_iterations=2)
        assert result.error <= labelled.tensor.nnz


def _write_mtx(path, body: str) -> str:
    path.write_text(body)
    return str(path)


class TestFromMatrixMarket:
    def test_pattern_general(self, tmp_path):
        path = _write_mtx(tmp_path / "m.mtx", (
            "%%MatrixMarket matrix coordinate pattern general\n"
            "% a comment\n"
            "3 4 3\n"
            "1 1\n"
            "2 3\n"
            "3 4\n"
        ))
        tensor = from_matrix_market(path)
        assert tensor.shape == (3, 4)
        np.testing.assert_array_equal(
            tensor.coords, [[0, 0], [1, 2], [2, 3]]
        )

    def test_real_drops_explicit_zeros(self, tmp_path):
        path = _write_mtx(tmp_path / "m.mtx", (
            "%%MatrixMarket matrix coordinate real general\n"
            "2 2 3\n"
            "1 1 1.5\n"
            "1 2 0.0\n"
            "2 2 -3\n"
        ))
        tensor = from_matrix_market(path)
        np.testing.assert_array_equal(tensor.coords, [[0, 0], [1, 1]])

    def test_symmetric_mirrors_off_diagonal(self, tmp_path):
        path = _write_mtx(tmp_path / "m.mtx", (
            "%%MatrixMarket matrix coordinate integer symmetric\n"
            "3 3 2\n"
            "2 1 7\n"
            "3 3 1\n"
        ))
        tensor = from_matrix_market(path)
        np.testing.assert_array_equal(
            tensor.coords, [[0, 1], [1, 0], [2, 2]]
        )

    def test_duplicate_entries_collapse(self, tmp_path):
        path = _write_mtx(tmp_path / "m.mtx", (
            "%%MatrixMarket matrix coordinate pattern general\n"
            "2 2 3\n"
            "1 1\n"
            "1 1\n"
            "2 2\n"
        ))
        assert from_matrix_market(path).nnz == 2

    def test_case_insensitive_header(self, tmp_path):
        path = _write_mtx(tmp_path / "m.mtx", (
            "%%MATRIXMARKET MATRIX Coordinate Pattern General\n"
            "1 1 1\n"
            "1 1\n"
        ))
        assert from_matrix_market(path).nnz == 1

    def test_round_trips_from_triples(self, tmp_path):
        # The same adjacency via the labelled-triple path and the .mtx path
        # must give the same Boolean structure.
        pairs = [(0, 1), (1, 2), (2, 0), (1, 0)]
        labelled = from_triples(
            [(f"r{i}", "edge", f"c{j}") for i, j in pairs]
        )
        lines = "".join(f"{i + 1} {j + 1}\n" for i, j in pairs)
        path = _write_mtx(tmp_path / "m.mtx", (
            "%%MatrixMarket matrix coordinate pattern general\n"
            f"3 3 {len(pairs)}\n" + lines
        ))
        tensor = from_matrix_market(path)
        assert {tuple(c) for c in tensor.coords} == set(pairs)
        # from_triples assigns first-seen indices; mapping each coordinate
        # back through its labels must recover the same cell set.
        via_labels = {
            (int(labelled.label_of(0, a)[1:]), int(labelled.label_of(2, b)[1:]))
            for a, _, b in labelled.tensor.coords
        }
        assert via_labels == {tuple(c) for c in tensor.coords}

    def test_small_batches_match_one_shot(self, tmp_path):
        rng = np.random.default_rng(4)
        cells = {(int(r), int(c)) for r, c in
                 zip(rng.integers(0, 10, 40), rng.integers(0, 8, 40))}
        lines = "".join(f"{r + 1} {c + 1}\n" for r, c in sorted(cells))
        path = _write_mtx(tmp_path / "m.mtx", (
            "%%MatrixMarket matrix coordinate pattern general\n"
            f"10 8 {len(cells)}\n" + lines
        ))
        chunked = from_matrix_market(path, batch_rows=3)
        one_shot = from_matrix_market(path)
        np.testing.assert_array_equal(chunked.coords, one_shot.coords)


class TestMatrixMarketErrors:
    def test_empty_file(self, tmp_path):
        path = _write_mtx(tmp_path / "m.mtx", "")
        with pytest.raises(ValueError, match="empty file"):
            from_matrix_market(path)

    def test_bad_banner(self, tmp_path):
        path = _write_mtx(tmp_path / "m.mtx", "1 1 1\n1 1\n")
        with pytest.raises(ValueError, match="not a MatrixMarket file"):
            from_matrix_market(path)

    def test_unsupported_layout(self, tmp_path):
        path = _write_mtx(tmp_path / "m.mtx", (
            "%%MatrixMarket matrix array real general\n"
        ))
        with pytest.raises(ValueError, match="matrix coordinate"):
            from_matrix_market(path)

    def test_unsupported_field(self, tmp_path):
        path = _write_mtx(tmp_path / "m.mtx", (
            "%%MatrixMarket matrix coordinate complex general\n"
        ))
        with pytest.raises(ValueError, match="unsupported field"):
            from_matrix_market(path)

    def test_missing_size_line(self, tmp_path):
        path = _write_mtx(tmp_path / "m.mtx", (
            "%%MatrixMarket matrix coordinate pattern general\n"
            "% only comments follow\n"
        ))
        with pytest.raises(ValueError, match="missing size line"):
            from_matrix_market(path)

    def test_malformed_size_line(self, tmp_path):
        path = _write_mtx(tmp_path / "m.mtx", (
            "%%MatrixMarket matrix coordinate pattern general\n"
            "2 x 1\n"
        ))
        with pytest.raises(ValueError, match="non-integer size"):
            from_matrix_market(path)

    def test_wrong_field_count(self, tmp_path):
        path = _write_mtx(tmp_path / "m.mtx", (
            "%%MatrixMarket matrix coordinate real general\n"
            "2 2 1\n"
            "1 1\n"
        ))
        with pytest.raises(ValueError, match="expected 3 fields"):
            from_matrix_market(path)

    def test_out_of_bounds_entry(self, tmp_path):
        path = _write_mtx(tmp_path / "m.mtx", (
            "%%MatrixMarket matrix coordinate pattern general\n"
            "2 2 1\n"
            "3 1\n"
        ))
        with pytest.raises(ValueError, match="out of bounds"):
            from_matrix_market(path)

    def test_declared_count_mismatch(self, tmp_path):
        path = _write_mtx(tmp_path / "m.mtx", (
            "%%MatrixMarket matrix coordinate pattern general\n"
            "2 2 2\n"
            "1 1\n"
        ))
        with pytest.raises(ValueError, match="declared 2 entries but found 1"):
            from_matrix_market(path)

    def test_error_carries_line_number(self, tmp_path):
        path = _write_mtx(tmp_path / "m.mtx", (
            "%%MatrixMarket matrix coordinate pattern general\n"
            "2 2 1\n"
            "a b\n"
        ))
        with pytest.raises(ValueError, match=r":3:"):
            from_matrix_market(path)


class TestFromSliceFiles:
    def _slice(self, tmp_path, name, pairs, shape=(3, 4)):
        lines = "".join(f"{i + 1} {j + 1}\n" for i, j in pairs)
        return _write_mtx(tmp_path / name, (
            "%%MatrixMarket matrix coordinate pattern general\n"
            f"{shape[0]} {shape[1]} {len(pairs)}\n" + lines
        ))

    def test_stacks_slices_along_third_mode(self, tmp_path):
        paths = [
            self._slice(tmp_path, "s0.mtx", [(0, 0), (1, 1)]),
            self._slice(tmp_path, "s1.mtx", [(2, 3)]),
        ]
        tensor = from_slice_files(paths)
        assert tensor.shape == (3, 4, 2)
        assert {tuple(c) for c in tensor.coords} == {
            (0, 0, 0), (1, 1, 0), (2, 3, 1)
        }

    def test_matches_from_triples_structure(self, tmp_path):
        pairs_by_slice = [[(0, 1), (1, 0)], [(0, 0)], [(2, 2), (0, 1)]]
        paths = [
            self._slice(tmp_path, f"s{k}.mtx", pairs, shape=(3, 3))
            for k, pairs in enumerate(pairs_by_slice)
        ]
        tensor = from_slice_files(paths)
        expected = {
            (i, j, k)
            for k, pairs in enumerate(pairs_by_slice)
            for i, j in pairs
        }
        assert {tuple(c) for c in tensor.coords} == expected

    def test_shape_mismatch_rejected(self, tmp_path):
        paths = [
            self._slice(tmp_path, "s0.mtx", [(0, 0)], shape=(3, 4)),
            self._slice(tmp_path, "s1.mtx", [(0, 0)], shape=(2, 4)),
        ]
        with pytest.raises(ValueError, match="slice 1 is 2x4, expected 3x4"):
            from_slice_files(paths)

    def test_empty_path_list_rejected(self):
        with pytest.raises(ValueError, match="at least one slice"):
            from_slice_files([])

    def test_factorizable_output(self, tmp_path):
        rng = np.random.default_rng(1)
        paths = []
        for k in range(2):
            pairs = {(int(r), int(c)) for r, c in
                     zip(rng.integers(0, 6, 12), rng.integers(0, 6, 12))}
            paths.append(
                self._slice(tmp_path, f"s{k}.mtx", sorted(pairs),
                            shape=(6, 6))
            )
        tensor = from_slice_files(paths)
        from repro import dbtf

        result = dbtf(tensor, rank=2, seed=0, n_partitions=2,
                      max_iterations=2)
        assert result.error <= tensor.nnz


class TestMatrixMarketWriters:
    def _random_tensor(self, seed, shape, density=0.25):
        rng = np.random.default_rng(seed)
        return SparseBoolTensor.from_dense(
            (rng.random(shape) < density).astype(np.uint8)
        )

    def test_two_way_round_trip(self, tmp_path):
        tensor = self._random_tensor(0, (7, 9))
        path = tmp_path / "matrix.mtx"
        to_matrix_market(tensor, path)
        assert from_matrix_market(path) == tensor

    def test_empty_matrix_round_trip(self, tmp_path):
        tensor = SparseBoolTensor.empty((4, 6))
        path = tmp_path / "empty.mtx"
        to_matrix_market(tensor, path)
        restored = from_matrix_market(path)
        assert restored == tensor
        assert restored.shape == (4, 6)

    def test_header_is_pattern_general(self, tmp_path):
        tensor = self._random_tensor(1, (3, 3))
        path = tmp_path / "matrix.mtx"
        to_matrix_market(tensor, path)
        first = path.read_text().splitlines()[0]
        assert first == "%%MatrixMarket matrix coordinate pattern general"

    def test_three_way_tensor_rejected(self, tmp_path):
        tensor = self._random_tensor(2, (3, 3, 3))
        with pytest.raises(ValueError, match="two-way"):
            to_matrix_market(tensor, tmp_path / "bad.mtx")

    def test_slice_files_round_trip(self, tmp_path):
        tensor = self._random_tensor(3, (6, 5, 4))
        paths = to_slice_files(tensor, tmp_path / "slices")
        assert len(paths) == tensor.shape[2]
        assert from_slice_files(paths) == tensor

    def test_empty_slices_preserved(self, tmp_path):
        # Only slice 0 is populated; slices 1-2 must still be written so
        # the slice count carries mode 2's dimension.
        tensor = SparseBoolTensor(
            (3, 3, 3), np.array([(0, 0, 0), (1, 2, 0)], dtype=np.int64)
        )
        paths = to_slice_files(tensor, tmp_path / "slices")
        assert len(paths) == 3
        assert from_slice_files(paths) == tensor

    def test_two_way_tensor_rejected_by_slice_writer(self, tmp_path):
        tensor = self._random_tensor(4, (3, 3))
        with pytest.raises(ValueError, match="three-way"):
            to_slice_files(tensor, tmp_path / "slices")
