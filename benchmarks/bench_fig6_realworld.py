"""Figure 6: scalability on the real-world datasets.

Paper: DBTF is the only method that scales to all of Facebook, DBLP,
CAIDA-DDoS-S/L and NELL-S/L; Walk'n'Merge finishes only on Facebook (21x
slower than DBTF) and BCP_ALS fails on every dataset (O.O.M., or O.O.T. on
DBLP).  The stand-ins are scaled (DESIGN.md §3); the qualitative pattern —
who completes where — is the reproduced artifact.
"""

import pytest

from repro.core import dbtf
from repro.datasets import load_dataset
from repro.experiments import run_realworld

from _utils import run_series_once, save_table


@pytest.mark.parametrize("name", ["facebook", "dblp", "ddos-s", "nell-s"])
def test_dbtf_on_dataset(benchmark, name):
    tensor = load_dataset(name, seed=0)
    result = benchmark(
        lambda: dbtf(tensor, rank=10, seed=0, n_partitions=16, max_iterations=3)
    )
    assert result.error <= tensor.nnz


def test_figure6_series(benchmark):
    table = run_series_once(
        benchmark,
        lambda: run_realworld(
            dataset_names=("facebook", "dblp", "ddos-s", "nell-s"),
            timeout_sec=15.0,
        ),
    )
    save_table(table, "bench_figure6.txt")
    # DBTF completes on every dataset.
    assert all(not cell.startswith("O.O.") for cell in table.column("DBTF (s)"))
    # BCP_ALS completes on none of them.
    assert all(cell.startswith("O.O.") for cell in table.column("BCP_ALS (s)"))
    # Walk'n'Merge fails on at least the DDoS trace.
    ddos_row = next(row for row in table.rows if row[0] == "ddos-s")
    assert ddos_row[3].startswith("O.O.")
