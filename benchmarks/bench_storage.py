"""Acceptance gate for the out-of-core storage tier.

Factorizes a planted tensor whose tracked cache working set is at least
2x the configured memory budget and verifies, per backend, that:

* factors and the per-iteration error trace are bit-identical to an
  unbudgeted serial run (the budget moves caches between RAM and spill
  files, never changes the arithmetic);
* tracked resident bytes never exceed the budget (``peak_resident``);
* the run actually spilled (``spill_events > 0``) — otherwise the
  working-set-to-budget ratio was too small to prove anything.

The budget is derived, not hard-coded: a probe run under an effectively
unlimited budget measures the peak tracked working set, and the real
budget is half of that, which guarantees the >= 2x pressure ratio on any
host and any tensor size.

Usage::

    python benchmarks/bench_storage.py            # 48^3 tensor
    python benchmarks/bench_storage.py --smoke    # CI-sized quick run
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from _emit import emit, entry

from repro.core import dbtf
from repro.distengine import ClusterConfig, SimulatedRuntime
from repro.storage import format_size
from repro.tensor import planted_tensor

#: Probe budget large enough that nothing ever spills.
UNLIMITED = 1 << 50


def _run(tensor, args, memory_budget):
    """One budgeted (or probe) factorization on each requested backend."""
    results = {}
    for backend in args.backends:
        runtime = SimulatedRuntime(
            ClusterConfig(
                n_machines=2, cores_per_machine=2, backend=backend,
                memory_budget=memory_budget,
            )
        )
        try:
            started = time.perf_counter()
            result = dbtf(
                tensor, rank=args.rank, seed=0,
                max_iterations=args.iterations,
                n_partitions=args.partitions, runtime=runtime,
            )
            wall_s = time.perf_counter() - started
            budget = runtime.storage.budget
            results[backend] = {
                "wall_s": wall_s,
                "simulated_s": result.report.simulated_time,
                "fingerprint": _fingerprint(result),
                "peak_resident": budget.peak_resident,
                "spill_events": budget.spill_events,
                "load_events": budget.load_events,
                "spill_bytes": result.report.spill_bytes,
            }
        finally:
            runtime.close()
    return results


def _baseline(tensor, args):
    """Unbudgeted serial run: the reference fingerprint."""
    runtime = SimulatedRuntime(
        ClusterConfig(n_machines=2, cores_per_machine=2, backend="serial")
    )
    try:
        started = time.perf_counter()
        result = dbtf(
            tensor, rank=args.rank, seed=0, max_iterations=args.iterations,
            n_partitions=args.partitions, runtime=runtime,
        )
        wall_s = time.perf_counter() - started
        assert runtime.storage is None, "no budget must mean no storage tier"
        assert result.report.spill_bytes == 0
        return wall_s, result.report.simulated_time, _fingerprint(result)
    finally:
        runtime.close()


def _fingerprint(result):
    return (
        tuple(factor.words.tobytes() for factor in result.factors),
        result.errors_per_iteration,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dim", type=int, default=48,
                        help="cube side length (default 48)")
    parser.add_argument("--rank", type=int, default=4)
    parser.add_argument("--iterations", type=int, default=2)
    parser.add_argument("--partitions", type=int, default=4)
    parser.add_argument("--backends", nargs="+",
                        default=["serial", "thread", "process"],
                        choices=["serial", "thread", "process"])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workload for CI (16^3, rank 2)")
    args = parser.parse_args(argv)
    if args.smoke:
        args.dim, args.rank, args.partitions = 16, 2, 3

    tensor, _ = planted_tensor(
        (args.dim,) * 3, rank=args.rank, factor_density=0.2,
        rng=np.random.default_rng(7),
    )
    print(f"tensor          : {args.dim}^3, planted rank {args.rank}, "
          f"{tensor.nnz} nonzeros, {args.partitions} partitions")

    # Probe: measure the tracked cache working set with nothing spilling.
    probe = _run(tensor, argparse.Namespace(**{**vars(args),
                                              "backends": ["serial"]}),
                 UNLIMITED)["serial"]
    working_set = probe["peak_resident"]
    assert probe["spill_events"] == 0, "probe budget must never spill"
    budget_bytes = max(working_set // 2, 1)
    print(f"working set     : {format_size(working_set)} (probe peak)")
    print(f"memory budget   : {format_size(budget_bytes)} "
          f"(pressure ratio {working_set / budget_bytes:.1f}x)")

    base_wall, base_sim, base_fingerprint = _baseline(tensor, args)
    budgeted = _run(tensor, args, budget_bytes)

    entries = [
        entry("storage_probe_working_set",
              {"dim": args.dim, "rank": args.rank,
               "working_set_bytes": int(working_set)},
              probe["wall_s"], probe["simulated_s"]),
        entry("storage_unbudgeted_serial",
              {"dim": args.dim, "rank": args.rank},
              base_wall, base_sim),
    ]
    failures = []
    print()
    print(f"{'backend':<10}{'wall (s)':>10}{'spills':>8}{'loads':>7}"
          f"{'spill I/O':>12}{'peak resident':>16}{'identical':>11}")
    for backend, stats in budgeted.items():
        identical = stats["fingerprint"] == base_fingerprint
        within = stats["peak_resident"] <= budget_bytes
        spilled = stats["spill_events"] > 0
        if not identical:
            failures.append(f"{backend}: results differ from unbudgeted run")
        if not within:
            failures.append(
                f"{backend}: peak resident {stats['peak_resident']} exceeds "
                f"budget {budget_bytes}"
            )
        if not spilled:
            failures.append(f"{backend}: never spilled under pressure")
        print(f"{backend:<10}{stats['wall_s']:>10.3f}"
              f"{stats['spill_events']:>8}{stats['load_events']:>7}"
              f"{format_size(stats['spill_bytes']):>12}"
              f"{format_size(stats['peak_resident']):>16}"
              f"{str(identical):>11}")
        entries.append(
            entry(f"storage_budgeted_{backend}",
                  {"dim": args.dim, "rank": args.rank,
                   "budget_bytes": int(budget_bytes),
                   "spill_events": int(stats["spill_events"]),
                   "spill_bytes": int(stats["spill_bytes"]),
                   "peak_resident_bytes": int(stats["peak_resident"])},
                  stats["wall_s"], stats["simulated_s"])
        )
    print()
    emit("BENCH_storage.json", entries)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("all backends bit-identical, resident <= budget, spilling active")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
