"""Acceptance gate for incremental epoch-evolving factorization.

Evolves a planted tensor through T delta epochs and, per backend,
factorizes the stream twice:

* **incrementally** — one :class:`repro.FactorizationSession` that patches
  its cached unfoldings in place and warm-starts the solver per epoch,
  re-sweeping only delta-dirtied columns;
* **from scratch** — an independent ``dbtf`` run on each epoch's full
  tensor (what a non-incremental stack would do every snapshot).

The stream is constructed so each epoch's optimum is *known*: epoch ``e``
punches a few holes into cells covered exclusively by planted component
``e % cycle`` and refills the holes punched ``cycle`` epochs earlier, so
the planted factors stay optimal and the optimal error is exactly the
number of outstanding holes.  Verified per epoch and backend:

* the incremental run lands exactly on that **analytic optimum**, and is
  never worse than the from-scratch run (from-scratch occasionally falls
  into a far worse local optimum on the hole-punched tensors — cold
  sample initialization has no memory of the planted structure, which is
  precisely the failure mode warm-starting removes);
* the incremental run performs at least **5x fewer column sweeps** per
  delta epoch (scoped evaluations plus any escalated full iterations,
  against the batch run's full ``iterations x 3R`` sweep bill);
* incremental factors and error traces are **bit-identical across the
  serial, thread, and process backends**.

Usage::

    python benchmarks/bench_incremental.py            # 24^3 tensor, 5 epochs
    python benchmarks/bench_incremental.py --smoke    # CI-sized quick run
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from _emit import emit, entry

from repro import FactorizationSession
from repro.bitops import packing
from repro.core import DbtfConfig, dbtf
from repro.distengine import ClusterConfig, SimulatedRuntime
from repro.tensor import TensorDelta, planted_tensor

#: The asserted floor on (from-scratch sweeps) / (incremental sweeps).
SPEEDUP_FLOOR = 5.0

#: Components cycled through by the hole-punch/refill schedule.
CYCLE = 3


def _dense(factor):
    return packing.unpack_bits(factor.words, factor.n_cols).reshape(
        factor.n_rows, factor.n_cols
    )


def _evolve(tensor, factors, n_epochs, n_holes, rng):
    """Hole-punch/refill deltas with a known optimum per epoch.

    Epoch ``e`` removes ``n_holes`` cells covered *exclusively* by planted
    component ``e % CYCLE`` and re-adds the holes of epoch ``e - CYCLE``
    (same component).  Planted factors therefore stay optimal throughout
    and the optimal error equals the outstanding-hole count.
    """
    dense = [_dense(factor) for factor in factors]
    deltas, tensors, optima, holes = [], [], [], []
    outstanding = 0
    current = tensor
    for epoch in range(n_epochs):
        component = epoch % CYCLE
        coords = current.coords
        coverage = (
            dense[0][coords[:, 0]]
            & dense[1][coords[:, 1]]
            & dense[2][coords[:, 2]]
        )
        exclusive = np.flatnonzero(
            coverage[:, component] & (coverage.sum(axis=1) == 1)
        )
        pick = exclusive[
            rng.choice(
                len(exclusive),
                size=min(n_holes, len(exclusive)),
                replace=False,
            )
        ]
        removed = coords[pick]
        added = (
            holes[epoch - CYCLE]
            if epoch >= CYCLE
            else np.empty((0, 3), dtype=np.int64)
        )
        delta = TensorDelta.from_coords(current.shape, added, removed)
        current = current.apply_delta(delta)
        outstanding += delta.n_removed - delta.n_added
        deltas.append(delta)
        tensors.append(current)
        optima.append(outstanding)
        holes.append(removed)
    return deltas, tensors, optima


def _config(args, backend):
    return DbtfConfig(
        rank=args.rank,
        seed=0,
        max_iterations=args.iterations,
        n_partitions=args.partitions,
        cluster=ClusterConfig(
            n_machines=2, cores_per_machine=2, backend=backend
        ),
    )


def _incremental(tensor, deltas, args, backend):
    """One session advanced through every delta; per-epoch stats."""
    config = _config(args, backend)
    epochs = []
    started = time.perf_counter()
    with FactorizationSession(tensor, config) as session:
        epochs.append(session.factorize())
        for delta in deltas:
            epochs.append(session.advance(delta))
        simulated_s = session.runtime.report().simulated_time
    wall_s = time.perf_counter() - started
    return epochs, wall_s, simulated_s


def _scratch(tensors, args, backend):
    """Independent full factorization of each epoch's tensor."""
    config = _config(args, backend)
    results = []
    started = time.perf_counter()
    for tensor in tensors:
        runtime = SimulatedRuntime(config.resolved_cluster())
        try:
            results.append(dbtf(tensor, config=config, runtime=runtime))
        finally:
            runtime.close()
    wall_s = time.perf_counter() - started
    return results, wall_s


def _epoch_sweeps(epoch, rank):
    """Column evaluations one delta epoch cost the incremental path.

    The scoped first iteration's evaluations are metered
    (``columns_swept``); every later iteration is an escalated full sweep
    of all 3R columns on the unmetered batch path.  The error trace holds
    the baseline entry plus one entry per iteration.
    """
    full_iterations = max(0, len(epoch.result.errors_per_iteration) - 2)
    return epoch.columns_swept + full_iterations * 3 * rank


def _scratch_sweeps(result, rank):
    """A batch run evaluates all 3R columns per recorded error entry."""
    return len(result.errors_per_iteration) * 3 * rank


def _fingerprint(epochs):
    return tuple(
        (
            tuple(factor.words.tobytes() for factor in epoch.result.factors),
            epoch.result.errors_per_iteration,
        )
        for epoch in epochs
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dim", type=int, default=24,
                        help="cube side length (default 24)")
    parser.add_argument("--rank", type=int, default=6)
    parser.add_argument("--factor-density", type=float, default=0.25)
    parser.add_argument("--iterations", type=int, default=10)
    parser.add_argument("--partitions", type=int, default=4)
    parser.add_argument("--epochs", type=int, default=5,
                        help="delta epochs after the initial factorization")
    parser.add_argument("--holes", type=int, default=3,
                        help="cells removed per delta epoch")
    parser.add_argument("--backends", nargs="+",
                        default=["serial", "thread", "process"],
                        choices=["serial", "thread", "process"])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workload for CI (16^3, rank 5)")
    args = parser.parse_args(argv)
    if args.smoke:
        args.dim, args.rank, args.partitions = 16, 5, 3
        args.factor_density, args.holes = 0.35, 2

    rng = np.random.default_rng(7)
    tensor, factors = planted_tensor(
        (args.dim,) * 3, rank=args.rank,
        factor_density=args.factor_density, rng=rng,
    )
    deltas, tensors, optima = _evolve(
        tensor, factors, args.epochs, args.holes, rng
    )
    print(f"tensor          : {args.dim}^3, planted rank {args.rank}, "
          f"{tensor.nnz} nonzeros")
    print(f"epoch stream    : {args.epochs} hole-punch/refill deltas, "
          f"{args.holes} holes per epoch")

    entries = []
    failures = []
    fingerprints = {}
    print()
    print(f"{'backend':<10}{'inc wall (s)':>13}{'scratch wall':>13}"
          f"{'inc sweeps':>12}{'scratch':>9}{'ratio':>7}{'optimal':>9}")
    for backend in args.backends:
        epochs, inc_wall, inc_sim = _incremental(
            tensor, deltas, args, backend
        )
        scratch_results, scratch_wall = _scratch(tensors, args, backend)
        fingerprints[backend] = _fingerprint(epochs)

        if epochs[0].error != 0:
            failures.append(
                f"{backend}: epoch 0 error {epochs[0].error} != 0 — the "
                f"batch run must recover the planted factors for the "
                f"stream's optima to be known"
            )
        optimal = True
        inc_sweeps = scratch_sweeps = 0
        for epoch, scratch, optimum in zip(
            epochs[1:], scratch_results, optima
        ):
            if epoch.result.error != optimum:
                optimal = False
                failures.append(
                    f"{backend}: epoch {epoch.epoch} error "
                    f"{epoch.result.error} != analytic optimum {optimum}"
                )
            if epoch.result.error > scratch.error:
                failures.append(
                    f"{backend}: epoch {epoch.epoch} error "
                    f"{epoch.result.error} worse than from-scratch "
                    f"{scratch.error}"
                )
            epoch_inc = _epoch_sweeps(epoch, args.rank)
            epoch_scratch = _scratch_sweeps(scratch, args.rank)
            inc_sweeps += epoch_inc
            scratch_sweeps += epoch_scratch
            if epoch_inc * SPEEDUP_FLOOR > epoch_scratch:
                failures.append(
                    f"{backend}: epoch {epoch.epoch} swept {epoch_inc} "
                    f"columns, from-scratch {epoch_scratch} — below the "
                    f"{SPEEDUP_FLOOR:.0f}x floor"
                )
        ratio = scratch_sweeps / max(inc_sweeps, 1)
        print(f"{backend:<10}{inc_wall:>13.3f}{scratch_wall:>13.3f}"
              f"{inc_sweeps:>12}{scratch_sweeps:>9}{ratio:>6.1f}x"
              f"{str(optimal):>9}")
        entries.append(
            entry(f"incremental_{backend}",
                  {"dim": args.dim, "rank": args.rank,
                   "epochs": args.epochs, "holes": args.holes,
                   "inc_sweeps": int(inc_sweeps),
                   "scratch_sweeps": int(scratch_sweeps),
                   "sweep_ratio": float(ratio),
                   "scratch_wall_s": float(scratch_wall),
                   "final_error": int(epochs[-1].result.error)},
                  inc_wall, inc_sim)
        )

    reference = fingerprints[args.backends[0]]
    for backend in args.backends[1:]:
        if fingerprints[backend] != reference:
            failures.append(
                f"{backend}: incremental factors differ from "
                f"{args.backends[0]}"
            )

    print()
    emit("BENCH_incremental.json", entries)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(f"all epochs at the analytic optimum with >= "
          f"{SPEEDUP_FLOOR:.0f}x fewer column sweeps; backends "
          f"bit-identical")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
