"""Sec. IV-D reconstruction error vs. planted factor-matrix density.

The paper generates noise-free tensors from random factor matrices, adds
noise, and sweeps the factor density while other aspects stay fixed.  Every
method's relative error |X ⊕ X̃| / |X| is reported per density.
"""

import pytest

from repro.core import dbtf
from repro.datasets import ErrorTensorSpec, error_tensor
from repro.experiments import run_factor_density_sweep

from _utils import run_series_once, save_table

BASE = ErrorTensorSpec(shape=(32, 32, 32), rank=5, factor_density=0.2)


@pytest.mark.parametrize("density", [0.1, 0.2, 0.3])
def test_dbtf_on_error_tensor(benchmark, density):
    spec = ErrorTensorSpec(
        shape=BASE.shape, rank=BASE.rank, factor_density=density,
        additive_noise=BASE.additive_noise, destructive_noise=BASE.destructive_noise,
    )
    tensor, _ = error_tensor(spec)
    result = benchmark(
        lambda: dbtf(tensor, rank=spec.rank, seed=0, n_partitions=16,
                     n_initial_sets=4)
    )
    assert result.relative_error <= 1.0


def test_error_vs_factor_density_series(benchmark):
    table = run_series_once(
        benchmark,
        lambda: run_factor_density_sweep(
            densities=(0.1, 0.2, 0.3), base=BASE, timeout_sec=60.0
        ),
    )
    save_table(table, "bench_error_factor_density.txt")
    dbtf_errors = [float(cell) for cell in table.column("DBTF")]
    # The factorization must always beat the trivial empty model.
    assert all(error < 1.0 for error in dbtf_errors)
