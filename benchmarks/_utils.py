"""Shared helpers for the benchmark suite."""

import pathlib

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def save_table(table, filename: str) -> None:
    """Persist an experiment table under results/ and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = table.to_text()
    (RESULTS_DIR / filename).write_text(text + "\n")
    print()
    print(text)


def run_series_once(benchmark, fn):
    """Run a full experiment series exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
