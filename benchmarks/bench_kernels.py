"""Micro-benchmarks of the bit-packed kernels everything else is built on.

These are the operations the paper's flop analysis counts: Boolean row
summations (word-wise OR), reconstruction-error evaluation (XOR +
popcount), cache-table construction (Lemma 2), and the Boolean matrix
product.  Tracking them catches regressions in the library's foundation.
"""

import numpy as np
import pytest

from repro.bitops import BitMatrix, boolean_matmul, or_accumulate_table, packing


@pytest.fixture(scope="module")
def packed_rows():
    rng = np.random.default_rng(0)
    dense = (rng.random((512, 4096)) < 0.1).astype(np.uint8)
    return packing.pack_bits(dense)


def test_popcount_rows(benchmark, packed_rows):
    total = benchmark(lambda: packing.popcount_rows(packed_rows))
    assert total.shape == (512,)


def test_xor_popcount_error_kernel(benchmark, packed_rows):
    other = np.roll(packed_rows, 1, axis=0)
    result = benchmark(lambda: int(packing.popcount_rows(packed_rows ^ other).sum()))
    assert result >= 0


@pytest.mark.parametrize("group_size", [10, 15])
def test_cache_table_construction(benchmark, group_size):
    rng = np.random.default_rng(1)
    dense = (rng.random((group_size, 512)) < 0.3).astype(np.uint8)
    packed = packing.pack_bits(dense)
    table = benchmark(lambda: or_accumulate_table(packed, group_size))
    assert table.shape[0] == 2**group_size


def test_cache_gather(benchmark):
    rng = np.random.default_rng(2)
    table = or_accumulate_table(
        packing.pack_bits((rng.random((15, 512)) < 0.3).astype(np.uint8)), 15
    )
    keys = rng.integers(0, 2**15, size=(512, 64))
    gathered = benchmark(lambda: table[keys])
    assert gathered.shape == (512, 64, table.shape[1])


def test_boolean_matmul(benchmark):
    rng = np.random.default_rng(3)
    left = BitMatrix.random(256, 64, 0.2, rng)
    right = BitMatrix.random(64, 1024, 0.2, rng)
    product = benchmark(lambda: boolean_matmul(left, right))
    assert product.shape == (256, 1024)


def test_slice_bits(benchmark, packed_rows):
    sliced = benchmark(lambda: packing.slice_bits(packed_rows, 100, 3000))
    assert sliced.shape[0] == 512


@pytest.mark.parametrize("scratch", [False, True], ids=["alloc", "scratch"])
def test_masks_with_bit_cleared(benchmark, scratch):
    """The factor-update inner loop's mask copy, fresh vs reused buffer."""
    from repro.core.update import _masks_with_bit_cleared

    rng = np.random.default_rng(4)
    words = BitMatrix.random(4096, 64, 0.2, rng).words
    out = np.empty_like(words) if scratch else None

    def sweep():
        total = 0
        for column in range(64):
            total += int(_masks_with_bit_cleared(words, column, out=out)[0, 0])
        return total

    reference = sum(
        int(_masks_with_bit_cleared(words, column)[0, 0]) for column in range(64)
    )
    assert benchmark(sweep) == reference  # scratch reuse changes nothing


def main(argv=None) -> int:
    """Time every kernel directly and write ``BENCH_kernels.json``."""
    import argparse
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
    from _emit import best_wall_time, emit, entry

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=5)
    args = parser.parse_args(argv)

    from repro.core.update import _masks_with_bit_cleared

    rng = np.random.default_rng(0)
    packed = packing.pack_bits((rng.random((512, 4096)) < 0.1).astype(np.uint8))
    rolled = np.roll(packed, 1, axis=0)
    # The factor-update loop calls this once per column; the scratch
    # variant replaces 64 fresh allocations with one reused buffer.  The
    # copy's memory traffic dominates, so the wall-time delta is small —
    # the paired scenarios pin that reuse never regresses the kernel.
    mask_words = BitMatrix.random(262144, 64, 0.2, rng).words
    mask_scratch = np.empty_like(mask_words)

    def _mask_sweep(out):
        for column in range(64):
            _masks_with_bit_cleared(mask_words, column, out=out)
    group = packing.pack_bits((rng.random((15, 512)) < 0.3).astype(np.uint8))
    table = or_accumulate_table(group, 15)
    keys = rng.integers(0, 2**15, size=(512, 64))
    left = BitMatrix.random(256, 64, 0.2, rng)
    right = BitMatrix.random(64, 1024, 0.2, rng)

    scenarios = [
        ("popcount_rows", {"rows": 512, "cols": 4096},
         lambda: packing.popcount_rows(packed)),
        ("xor_popcount_error", {"rows": 512, "cols": 4096},
         lambda: int(packing.popcount_rows(packed ^ rolled).sum())),
        ("cache_table_construction", {"group_size": 15},
         lambda: or_accumulate_table(group, 15)),
        ("cache_gather", {"keys": keys.size},
         lambda: table[keys]),
        ("boolean_matmul", {"shape": [256, 64, 1024]},
         lambda: boolean_matmul(left, right)),
        ("slice_bits", {"rows": 512, "start": 100, "stop": 3000},
         lambda: packing.slice_bits(packed, 100, 3000)),
        ("masks_bit_cleared_alloc", {"rows": 262144, "columns": 64},
         lambda: _mask_sweep(None)),
        ("masks_bit_cleared_scratch", {"rows": 262144, "columns": 64},
         lambda: _mask_sweep(mask_scratch)),
    ]
    entries = [
        entry(name, params, best_wall_time(fn, args.repeats)[0])
        for name, params, fn in scenarios
    ]
    emit("BENCH_kernels.json", entries)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
