"""Micro-benchmarks of the bit-packed kernels everything else is built on.

These are the operations the paper's flop analysis counts: Boolean row
summations (word-wise OR), reconstruction-error evaluation (XOR +
popcount), cache-table construction (Lemma 2), and the Boolean matrix
product.  Tracking them catches regressions in the library's foundation.

Every kernel is benchmarked per registered implementation (the dispatch
registry in :mod:`repro.bitops.dispatch` is the source of truth), and
``main()`` additionally warms the autotune cache and times the *dispatched*
``boolean_matmul`` under the auto tier — the entry the >=3x floor is
asserted against.
"""

import numpy as np
import pytest

from repro.bitops import (
    BitMatrix,
    boolean_matmul,
    dispatch,
    khatri_rao,
    or_accumulate_table,
    packing,
    pointwise_vector_matrix,
)
from repro.distengine import (
    estimate_bytes,
    estimate_bytes_cached,
    estimate_pair_bytes,
)


@pytest.fixture(scope="module")
def packed_rows():
    rng = np.random.default_rng(0)
    dense = (rng.random((512, 4096)) < 0.1).astype(np.uint8)
    return packing.pack_bits(dense)


def test_popcount_rows(benchmark, packed_rows):
    total = benchmark(lambda: packing.popcount_rows(packed_rows))
    assert total.shape == (512,)


@pytest.mark.parametrize("impl", ["twopass", "fused", "bytelut"])
def test_xor_popcount_error_kernel(benchmark, packed_rows, impl):
    kernel = dispatch.kernel("xor_popcount").impls[impl].fn
    other = np.roll(packed_rows, 1, axis=0)
    result = benchmark(lambda: kernel(packed_rows, other))
    assert result == int(packing.popcount_rows(packed_rows ^ other).sum())


@pytest.mark.parametrize("group_size", [10, 15])
def test_cache_table_construction(benchmark, group_size):
    rng = np.random.default_rng(1)
    dense = (rng.random((group_size, 512)) < 0.3).astype(np.uint8)
    packed = packing.pack_bits(dense)
    table = benchmark(lambda: or_accumulate_table(packed, group_size))
    assert table.shape[0] == 2**group_size


def test_cache_gather(benchmark):
    rng = np.random.default_rng(2)
    table = or_accumulate_table(
        packing.pack_bits((rng.random((15, 512)) < 0.3).astype(np.uint8)), 15
    )
    keys = rng.integers(0, 2**15, size=(512, 64))
    gathered = benchmark(lambda: table[keys])
    assert gathered.shape == (512, 64, table.shape[1])


@pytest.mark.parametrize("impl", ["rowloop", "batched", "bulk"])
def test_boolean_matmul(benchmark, impl):
    kernel = dispatch.kernel("boolean_matmul").impls[impl].fn
    rng = np.random.default_rng(3)
    left = BitMatrix.random(256, 64, 0.2, rng)
    right = BitMatrix.random(64, 1024, 0.2, rng)
    product = benchmark(lambda: kernel(left, right))
    assert product.shape == (256, 1024)
    assert product == boolean_matmul(left, right)


@pytest.mark.parametrize("impl", ["rowloop", "broadcast", "bulk"])
def test_khatri_rao(benchmark, impl):
    kernel = dispatch.kernel("khatri_rao").impls[impl].fn
    rng = np.random.default_rng(5)
    left = BitMatrix.random(64, 64, 0.3, rng)
    right = BitMatrix.random(64, 64, 0.3, rng)
    product = benchmark(lambda: kernel(left, right))
    assert product.shape == (64 * 64, 64)
    assert product == khatri_rao(left, right)


@pytest.mark.parametrize("impl", ["rowloop", "mask", "dense"])
def test_pointwise_vector_matrix(benchmark, impl):
    kernel = dispatch.kernel("pointwise_vector_matrix").impls[impl].fn
    rng = np.random.default_rng(6)
    matrix = BitMatrix.random(4096, 64, 0.3, rng)
    vector = (rng.random(64) < 0.5).astype(np.uint8)
    product = benchmark(lambda: kernel(vector, matrix))
    assert product.shape == (4096, 64)
    assert product == pointwise_vector_matrix(vector, matrix)


def test_slice_bits(benchmark, packed_rows):
    sliced = benchmark(lambda: packing.slice_bits(packed_rows, 100, 3000))
    assert sliced.shape[0] == 512


def test_masks_with_bit_cleared(benchmark):
    """The factor-update path's per-column mask clear (fused AND)."""
    from repro.core.update import _masks_with_bit_cleared

    rng = np.random.default_rng(4)
    words = BitMatrix.random(4096, 64, 0.2, rng).words

    def sweep():
        total = 0
        for column in range(64):
            total += int(_masks_with_bit_cleared(words, column)[0, 0])
        return total

    reference = sum(
        int(_masks_with_bit_cleared(words, column)[0, 0]) for column in range(64)
    )
    assert benchmark(sweep) == reference


@pytest.fixture(scope="module")
def keyed_pairs():
    rng = np.random.default_rng(7)
    return [(i, rng.integers(0, 2, 16, dtype=np.int64)) for i in range(4096)]


def test_estimate_pair_bytes_batched(benchmark, keyed_pairs):
    """Batched shuffle sizing vs the per-pair estimate_bytes loop."""
    total = benchmark(lambda: estimate_pair_bytes(keyed_pairs))
    assert total == sum(
        estimate_bytes(key) + estimate_bytes(value)
        for key, value in keyed_pairs
    )


def test_estimate_bytes_cached_hit(benchmark):
    """Memoized payload sizing: repeat calls skip the recursive walk."""

    class Payload:
        def __init__(self):
            self.words = np.zeros((512, 64), dtype=np.uint64)
            self.meta = {"rows": 512, "name": "factor"}

    payload = Payload()
    expected = estimate_bytes_cached(payload)  # prime the memo
    assert benchmark(lambda: estimate_bytes_cached(payload)) == expected


def main(argv=None) -> int:
    """Time every kernel implementation and write ``BENCH_kernels.json``.

    Also warms the autotune cache (``--autotune-cache``, default
    ``.autotune/kernels.json`` at the repo root) over the registered
    shape grids, then times the *dispatched* ``boolean_matmul`` under the
    auto tier.  Floors asserted before emitting:

    * batched boolean_matmul >= 3x the row loop at (256, 64, 1024);
    * autotuned (dispatched) boolean_matmul >= 3x the row loop there too;
    * broadcast khatri_rao >= 3x its row loop at (64, 64, 64);
    * packed-mask pointwise product >= 3x its row loop at (4096, 64).
    """
    import argparse
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
    from _emit import REPO_ROOT, best_wall_time, emit, entry

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--smoke", action="store_true",
                        help="fewer repeats (CI-friendly)")
    parser.add_argument("--autotune-cache", default=None, metavar="PATH",
                        help="autotune cache file to warm and persist "
                             "(default: .autotune/kernels.json at repo root)")
    args = parser.parse_args(argv)
    repeats = 2 if args.smoke else args.repeats
    cache_path = args.autotune_cache or str(
        REPO_ROOT / ".autotune" / "kernels.json"
    )

    from repro.core.update import _masks_with_bit_cleared

    matmul_impls = dispatch.kernel("boolean_matmul").impls
    khatri_impls = dispatch.kernel("khatri_rao").impls
    pointwise_impls = dispatch.kernel("pointwise_vector_matrix").impls
    xor_impls = dispatch.kernel("xor_popcount").impls

    rng = np.random.default_rng(0)
    packed = packing.pack_bits((rng.random((512, 4096)) < 0.1).astype(np.uint8))
    rolled = np.roll(packed, 1, axis=0)
    mask_words = BitMatrix.random(262144, 64, 0.2, rng).words

    def _mask_sweep():
        for column in range(64):
            _masks_with_bit_cleared(mask_words, column)
    group = packing.pack_bits((rng.random((15, 512)) < 0.3).astype(np.uint8))
    table = or_accumulate_table(group, 15)
    keys = rng.integers(0, 2**15, size=(512, 64))
    left = BitMatrix.random(256, 64, 0.2, rng)
    right = BitMatrix.random(64, 1024, 0.2, rng)
    kr_left = BitMatrix.random(64, 64, 0.3, rng)
    kr_right = BitMatrix.random(64, 64, 0.3, rng)
    pw_matrix = BitMatrix.random(4096, 64, 0.3, rng)
    pw_vector = (rng.random(64) < 0.5).astype(np.uint8)
    pairs = [(i, rng.integers(0, 2, 16, dtype=np.int64)) for i in range(4096)]

    class _Payload:
        def __init__(self):
            self.words = np.zeros((512, 64), dtype=np.uint64)
            self.meta = {"rows": 512, "name": "factor"}

    payload = _Payload()
    estimate_bytes_cached(payload)  # prime the memo before timing

    # Warm the autotune cache over the registered grids, then time the
    # dispatched matmul under the auto tier (cache hits only, no measuring
    # inside the timed region).
    dispatcher = dispatch.configure(tier="auto", cache_path=cache_path)
    dispatcher.autotune(repeats=repeats)
    auto_winner = dispatcher.choose("boolean_matmul", (256, 64, 1024))

    scenarios = [
        ("popcount_rows", {"rows": 512, "cols": 4096},
         lambda: packing.popcount_rows(packed)),
        ("xor_popcount_error", {"rows": 512, "cols": 4096},
         lambda: int(packing.popcount_rows(packed ^ rolled).sum())),
        ("xor_popcount_fused", {"rows": 512, "cols": 4096},
         lambda: xor_impls["fused"].fn(packed, rolled)),
        ("xor_popcount_bytelut", {"rows": 512, "cols": 4096},
         lambda: xor_impls["bytelut"].fn(packed, rolled)),
        ("cache_table_construction", {"group_size": 15},
         lambda: or_accumulate_table(group, 15)),
        ("cache_gather", {"keys": keys.size},
         lambda: table[keys]),
        ("boolean_matmul_rowloop", {"shape": [256, 64, 1024]},
         lambda: matmul_impls["rowloop"].fn(left, right)),
        ("boolean_matmul_batched", {"shape": [256, 64, 1024]},
         lambda: matmul_impls["batched"].fn(left, right)),
        ("boolean_matmul_bulk", {"shape": [256, 64, 1024]},
         lambda: matmul_impls["bulk"].fn(left, right)),
        ("boolean_matmul_auto", {"shape": [256, 64, 1024],
                                 "winner": auto_winner},
         lambda: boolean_matmul(left, right)),
        ("khatri_rao_rowloop", {"shape": [64, 64, 64]},
         lambda: khatri_impls["rowloop"].fn(kr_left, kr_right)),
        ("khatri_rao_broadcast", {"shape": [64, 64, 64]},
         lambda: khatri_impls["broadcast"].fn(kr_left, kr_right)),
        ("khatri_rao_bulk", {"shape": [64, 64, 64]},
         lambda: khatri_impls["bulk"].fn(kr_left, kr_right)),
        ("pointwise_rowloop", {"rows": 4096, "cols": 64},
         lambda: pointwise_impls["rowloop"].fn(pw_vector, pw_matrix)),
        ("pointwise_mask", {"rows": 4096, "cols": 64},
         lambda: pointwise_impls["mask"].fn(pw_vector, pw_matrix)),
        ("slice_bits", {"rows": 512, "start": 100, "stop": 3000},
         lambda: packing.slice_bits(packed, 100, 3000)),
        ("masks_bit_cleared", {"rows": 262144, "columns": 64},
         lambda: _mask_sweep()),
        ("sizing_per_pair_loop", {"pairs": len(pairs)},
         lambda: sum(estimate_bytes(k) + estimate_bytes(v)
                     for k, v in pairs)),
        ("sizing_batched_pairs", {"pairs": len(pairs)},
         lambda: estimate_pair_bytes(pairs)),
        ("sizing_payload_walk", {"attrs": 2},
         lambda: estimate_bytes(payload)),
        ("sizing_payload_cached", {"attrs": 2},
         lambda: estimate_bytes_cached(payload)),
    ]
    entries = [
        entry(name, params, best_wall_time(fn, repeats)[0])
        for name, params, fn in scenarios
    ]
    dispatch.configure(tier="fixed")
    by_name = {record["name"]: record["wall_s"] for record in entries}

    floors = [
        ("batched boolean_matmul", "boolean_matmul_rowloop",
         "boolean_matmul_batched"),
        ("autotuned boolean_matmul", "boolean_matmul_rowloop",
         "boolean_matmul_auto"),
        ("broadcast khatri_rao", "khatri_rao_rowloop", "khatri_rao_broadcast"),
        ("packed-mask pointwise", "pointwise_rowloop", "pointwise_mask"),
    ]
    for label, slow, fast in floors:
        speedup = by_name[slow] / by_name[fast]
        print(f"{label} speedup: {speedup:.2f}x ({slow} -> {fast})")
        if speedup < 3.0:
            raise SystemExit(
                f"{label} only {speedup:.2f}x faster than {slow}; expected >= 3x"
            )
    for label, slow, fast in [
        ("batched pair sizing", "sizing_per_pair_loop",
         "sizing_batched_pairs"),
        ("memoized payload sizing", "sizing_payload_walk",
         "sizing_payload_cached"),
    ]:
        print(f"{label} speedup: {by_name[slow] / by_name[fast]:.2f}x "
              f"({slow} -> {fast})")
    print(f"autotune cache: {cache_path} "
          f"(winner at (256,64,1024): {auto_winner})")
    emit("BENCH_kernels.json", entries)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
