"""Micro-benchmarks of the bit-packed kernels everything else is built on.

These are the operations the paper's flop analysis counts: Boolean row
summations (word-wise OR), reconstruction-error evaluation (XOR +
popcount), cache-table construction (Lemma 2), and the Boolean matrix
product.  Tracking them catches regressions in the library's foundation.
"""

import numpy as np
import pytest

from repro.bitops import BitMatrix, boolean_matmul, or_accumulate_table, packing


@pytest.fixture(scope="module")
def packed_rows():
    rng = np.random.default_rng(0)
    dense = (rng.random((512, 4096)) < 0.1).astype(np.uint8)
    return packing.pack_bits(dense)


def test_popcount_rows(benchmark, packed_rows):
    total = benchmark(lambda: packing.popcount_rows(packed_rows))
    assert total.shape == (512,)


def test_xor_popcount_error_kernel(benchmark, packed_rows):
    other = np.roll(packed_rows, 1, axis=0)
    result = benchmark(lambda: packing.xor_popcount(packed_rows, other))
    assert result == int(packing.popcount_rows(packed_rows ^ other).sum())


@pytest.mark.parametrize("group_size", [10, 15])
def test_cache_table_construction(benchmark, group_size):
    rng = np.random.default_rng(1)
    dense = (rng.random((group_size, 512)) < 0.3).astype(np.uint8)
    packed = packing.pack_bits(dense)
    table = benchmark(lambda: or_accumulate_table(packed, group_size))
    assert table.shape[0] == 2**group_size


def test_cache_gather(benchmark):
    rng = np.random.default_rng(2)
    table = or_accumulate_table(
        packing.pack_bits((rng.random((15, 512)) < 0.3).astype(np.uint8)), 15
    )
    keys = rng.integers(0, 2**15, size=(512, 64))
    gathered = benchmark(lambda: table[keys])
    assert gathered.shape == (512, 64, table.shape[1])


@pytest.mark.parametrize("impl", ["rowloop", "batched"])
def test_boolean_matmul(benchmark, impl):
    from repro.bitops.ops import _boolean_matmul_batched, _boolean_matmul_rowloop

    rng = np.random.default_rng(3)
    left = BitMatrix.random(256, 64, 0.2, rng)
    right = BitMatrix.random(64, 1024, 0.2, rng)
    kernel = _boolean_matmul_batched if impl == "batched" else _boolean_matmul_rowloop
    product = benchmark(lambda: kernel(left, right))
    assert product.shape == (256, 1024)
    assert product == boolean_matmul(left, right)


def test_slice_bits(benchmark, packed_rows):
    sliced = benchmark(lambda: packing.slice_bits(packed_rows, 100, 3000))
    assert sliced.shape[0] == 512


def test_masks_with_bit_cleared(benchmark):
    """The legacy factor-update path's per-column mask copy."""
    from repro.core.update import _masks_with_bit_cleared

    rng = np.random.default_rng(4)
    words = BitMatrix.random(4096, 64, 0.2, rng).words

    def sweep():
        total = 0
        for column in range(64):
            total += int(_masks_with_bit_cleared(words, column)[0, 0])
        return total

    reference = sum(
        int(_masks_with_bit_cleared(words, column)[0, 0]) for column in range(64)
    )
    assert benchmark(sweep) == reference


def main(argv=None) -> int:
    """Time every kernel directly and write ``BENCH_kernels.json``."""
    import argparse
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
    from _emit import best_wall_time, emit, entry

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=5)
    args = parser.parse_args(argv)

    from repro.bitops.ops import _boolean_matmul_batched, _boolean_matmul_rowloop
    from repro.core.update import _masks_with_bit_cleared

    rng = np.random.default_rng(0)
    packed = packing.pack_bits((rng.random((512, 4096)) < 0.1).astype(np.uint8))
    rolled = np.roll(packed, 1, axis=0)
    mask_words = BitMatrix.random(262144, 64, 0.2, rng).words

    def _mask_sweep():
        for column in range(64):
            _masks_with_bit_cleared(mask_words, column)
    group = packing.pack_bits((rng.random((15, 512)) < 0.3).astype(np.uint8))
    table = or_accumulate_table(group, 15)
    keys = rng.integers(0, 2**15, size=(512, 64))
    left = BitMatrix.random(256, 64, 0.2, rng)
    right = BitMatrix.random(64, 1024, 0.2, rng)

    scenarios = [
        ("popcount_rows", {"rows": 512, "cols": 4096},
         lambda: packing.popcount_rows(packed)),
        ("xor_popcount_error", {"rows": 512, "cols": 4096},
         lambda: int(packing.popcount_rows(packed ^ rolled).sum())),
        ("xor_popcount_fused", {"rows": 512, "cols": 4096},
         lambda: packing.xor_popcount(packed, rolled)),
        ("cache_table_construction", {"group_size": 15},
         lambda: or_accumulate_table(group, 15)),
        ("cache_gather", {"keys": keys.size},
         lambda: table[keys]),
        ("boolean_matmul_rowloop", {"shape": [256, 64, 1024]},
         lambda: _boolean_matmul_rowloop(left, right)),
        ("boolean_matmul_batched", {"shape": [256, 64, 1024]},
         lambda: _boolean_matmul_batched(left, right)),
        ("slice_bits", {"rows": 512, "start": 100, "stop": 3000},
         lambda: packing.slice_bits(packed, 100, 3000)),
        ("masks_bit_cleared", {"rows": 262144, "columns": 64},
         lambda: _mask_sweep()),
    ]
    entries = [
        entry(name, params, best_wall_time(fn, args.repeats)[0])
        for name, params, fn in scenarios
    ]
    by_name = {record["name"]: record["wall_s"] for record in entries}
    speedup = by_name["boolean_matmul_rowloop"] / by_name["boolean_matmul_batched"]
    print(f"boolean_matmul batched speedup: {speedup:.2f}x")
    if speedup < 3.0:
        raise SystemExit(
            f"batched boolean_matmul only {speedup:.2f}x faster than the "
            f"row loop at (256, 64, 1024); expected >= 3x"
        )
    emit("BENCH_kernels.json", entries)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
