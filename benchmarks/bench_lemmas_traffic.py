"""Lemmas 6-7: the paper's communication analysis, validated empirically.

Lemma 6 — unfolded tensors are shuffled exactly once (partitioning);
Lemma 7 — per-iteration traffic is only broadcasts and error collections,
O(T · R · I · (M + N)), and the collect volume grows with N.
"""

from repro.experiments import run_traffic_vs_iterations, run_traffic_vs_partitions

from _utils import run_series_once, save_table


def test_traffic_vs_iterations_series(benchmark):
    table = run_series_once(
        benchmark, lambda: run_traffic_vs_iterations(iterations=(1, 2, 4))
    )
    save_table(table, "bench_lemma_traffic_iterations.txt")
    shuffles = {cell for cell in table.column("shuffle bytes")}
    # Lemma 6: the one-off partitioning shuffle is independent of T.
    assert len(shuffles) == 1
    # Lemma 7: per-iteration broadcast volume is constant.
    performed = [int(cell) for cell in table.column("performed T")]
    broadcasts = [int(cell) for cell in table.column("broadcast bytes")]
    per_iteration = [b / t for b, t in zip(broadcasts, performed)]
    assert max(per_iteration) <= 1.2 * min(per_iteration)


def test_traffic_vs_partitions_series(benchmark):
    table = run_series_once(
        benchmark, lambda: run_traffic_vs_partitions(partition_counts=(2, 8, 32))
    )
    save_table(table, "bench_lemma_traffic_partitions.txt")
    collects = [int(cell) for cell in table.column("collect bytes")]
    # Lemma 7: error-collection volume grows with N.
    assert collects == sorted(collects)
    assert collects[-1] > collects[0]
