"""Stage-fusion A/B: dispatched stages and wall time, fused vs legacy eager.

The plan layer's claim (DESIGN.md §10): fusing each maximal chain of
narrow transformations into one dispatch cuts the per-iteration stage
count of a DBTF run by at least 30% — one scheduler wave, span, and
driver round-trip per chain instead of per transformation — while the
factor bit-patterns, the error trace, and every ledger byte total stay
identical.  This benchmark measures both modes on the same fixed-seed
planted tensor, derives the *per-iteration* stage counts from the
difference between a 2-iteration and a 1-iteration run (subtracting the
shared setup), asserts the equivalence + reduction contract, and writes
``BENCH_plan.json``::

    python benchmarks/bench_plan.py [--smoke]

Run it after any change to the planner, the runtime dispatch path, or
the decomposition's lineage shape.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.core import dbtf
from repro.distengine import ClusterConfig, SimulatedRuntime
from repro.tensor import planted_tensor

sys.path.insert(0, str(__import__("pathlib").Path(__file__).resolve().parent))
from _emit import best_wall_time, emit, entry  # noqa: E402

N_MACHINES = 4


def _run(tensor, rank, max_iterations, n_partitions, eager):
    """One decomposition; returns (fingerprint, n_stages, simulated_s)."""
    with SimulatedRuntime(
        ClusterConfig(n_machines=N_MACHINES, cores_per_machine=2, eager=eager)
    ) as runtime:
        result = dbtf(tensor, rank=rank, max_iterations=max_iterations,
                      n_partitions=n_partitions, seed=0, runtime=runtime)
        # Task-payload bytes are excluded: fusion dispatches one composed
        # payload per chain where eager ships one per hop, so TASK totals
        # legitimately differ between the modes.
        fingerprint = (
            tuple(factor.words.tobytes() for factor in result.factors),
            tuple(result.errors_per_iteration),
            result.report.shuffle_bytes,
            result.report.broadcast_bytes,
            result.report.collect_bytes,
        )
        return fingerprint, result.report.n_stages, runtime.simulated_time(
            N_MACHINES
        )


def measure(dim: int, rank: int, n_partitions: int, iterations: int = 2):
    """Fused-vs-eager comparison on one planted tensor.

    Returns ``(records, summary)``: the ``_emit`` entries for both modes
    and a dict with the per-iteration stage counts and the reduction.
    """
    tensor, _ = planted_tensor(
        (dim, dim, dim), rank=rank, factor_density=0.3,
        rng=np.random.default_rng(7),
    )
    params = {"dim": dim, "rank": rank, "n_partitions": n_partitions,
              "iterations": iterations}

    records = []
    stages = {}
    per_iteration = {}
    for mode, eager in (("fused", False), ("eager", True)):
        wall, (fingerprint, n_stages, simulated) = best_wall_time(
            lambda eager=eager: _run(tensor, rank, iterations, n_partitions,
                                     eager),
            repeats=2,
        )
        _, short_stages, _ = _run(tensor, rank, 1, n_partitions, eager)
        stages[mode] = {"fingerprint": fingerprint, "total": n_stages}
        per_iteration[mode] = n_stages - short_stages
        records.append(
            entry(f"dbtf_{mode}", {**params, "stages_dispatched": n_stages,
                                   "stages_per_iteration": per_iteration[mode]},
                  wall_s=wall, simulated_s=simulated)
        )

    # The equivalence half of the contract: fusion may only change *how
    # many* stages run, never what they compute or meter.
    if stages["fused"]["fingerprint"] != stages["eager"]["fingerprint"]:
        raise AssertionError(
            "fused and eager runs diverged: factors / errors / ledger bytes "
            "must be bit-identical"
        )
    reduction = 1.0 - per_iteration["fused"] / per_iteration["eager"]
    if reduction < 0.30:
        raise AssertionError(
            f"per-iteration stage reduction {reduction:.1%} is below the 30% "
            f"floor (fused {per_iteration['fused']}, "
            f"eager {per_iteration['eager']})"
        )
    summary = {
        "stages_per_iteration_fused": per_iteration["fused"],
        "stages_per_iteration_eager": per_iteration["eager"],
        "reduction": reduction,
    }
    records.append(
        entry("stage_reduction_per_iteration", {**params, **summary},
              wall_s=0.0, simulated_s=None)
    )
    return records, summary


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dim", type=int, default=24)
    parser.add_argument("--rank", type=int, default=2)
    parser.add_argument("--partitions", type=int, default=3)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized quick run")
    args = parser.parse_args(argv)
    if args.smoke:
        args.dim = 12

    records, summary = measure(args.dim, args.rank, args.partitions)
    emit("BENCH_plan.json", records)
    print(
        f"stages/iteration: fused={summary['stages_per_iteration_fused']} "
        f"eager={summary['stages_per_iteration_eager']} "
        f"(-{summary['reduction']:.1%})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
