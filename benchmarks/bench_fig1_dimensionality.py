"""Figure 1(a): runtime vs. tensor dimensionality.

Paper: I = J = K from 2^6 to 2^13 at density 0.01, rank 10; DBTF is the
only method that reaches 2^13 and decomposes the largest tensors the
baselines handle 382x (Walk'n'Merge) and 68x (BCP_ALS) faster.  Scaled
here to 2^4..2^7 for the series plus per-size DBTF micro-benchmarks.
"""

import pytest

from repro.core import dbtf
from repro.datasets import scalability_tensor
from repro.experiments import run_dimensionality

from _utils import run_series_once, save_table

DENSITY = 0.01
RANK = 10


@pytest.mark.parametrize("exponent", [4, 5, 6, 7])
def test_dbtf_by_dimensionality(benchmark, exponent):
    tensor = scalability_tensor(exponent, DENSITY, seed=0)
    result = benchmark(
        lambda: dbtf(tensor, rank=RANK, seed=0, n_partitions=16, max_iterations=3)
    )
    assert result.error <= tensor.nnz


def test_figure1a_series(benchmark):
    table = run_series_once(
        benchmark,
        lambda: run_dimensionality(exponents=(4, 5, 6, 7), timeout_sec=20.0),
    )
    save_table(table, "bench_figure1a.txt")
    # DBTF completes at every size (the paper's headline claim).
    assert all(not cell.startswith("O.O.") for cell in table.column("DBTF (s)"))
    # BCP_ALS hits its association-matrix wall at the largest size.
    assert table.column("BCP_ALS (s)")[-1].startswith("O.O.")
