"""Ablation A1: row-summation caching on vs. off.

DBTF's central optimization (Sec. III-C) precomputes all 2^R Boolean row
summations.  This ablation times one factor update with the cached,
partitioned kernel against the semantically identical single-machine
recompute kernel (the BCP_ALS-style update) on the same problem, and
verifies both produce the same factor.

Note on interpretation: our recompute kernel is itself heavily vectorized
(it shares each component's coverage across rows in bulk word ops), so at
small scales the two kernels trade places and the paper's flop-count gap
shows up mostly at larger sizes and ranks.  The cached kernel's structural
advantage that always holds is memory: it works on the packed, partitioned
unfolding, while the recompute kernel materializes the dense I x JK
unfolding — the reason only DBTF survives the Figure 1(a)/6 scale-ups.
"""

import numpy as np
import pytest

from repro.baselines import update_factor_uncached
from repro.bitops import BitMatrix
from repro.core import DbtfConfig, prepare_partitioned_unfoldings, update_factor
from repro.distengine import SimulatedRuntime
from repro.tensor import random_factors, unfold
from repro.datasets import scalability_tensor

EXPONENT = 6
RANK = 10


@pytest.fixture(scope="module")
def problem():
    tensor = scalability_tensor(EXPONENT, 0.05, seed=0)
    start = random_factors(tensor.shape, RANK, 0.3, np.random.default_rng(1))
    return tensor, start


def test_cached_update(benchmark, problem):
    tensor, start = problem
    runtime = SimulatedRuntime()
    rdds = prepare_partitioned_unfoldings(tensor, 16, runtime)
    config = DbtfConfig(rank=RANK, n_partitions=16)

    result = benchmark(
        lambda: update_factor(rdds[0], start[0], start[2], start[1], config, runtime)
    )
    assert result[1] <= tensor.nnz * 2


def test_uncached_update(benchmark, problem):
    tensor, start = problem
    unfolded = BitMatrix.from_dense(unfold(tensor, 0).to_dense())

    result = benchmark(
        lambda: update_factor_uncached(unfolded, start[0], start[2], start[1])
    )
    assert result[1] <= tensor.nnz * 2


def test_cached_and_uncached_agree(problem):
    tensor, start = problem
    runtime = SimulatedRuntime()
    rdds = prepare_partitioned_unfoldings(tensor, 16, runtime)
    config = DbtfConfig(rank=RANK, n_partitions=16)
    cached_factor, cached_error = update_factor(
        rdds[0], start[0], start[2], start[1], config, runtime
    )
    unfolded = BitMatrix.from_dense(unfold(tensor, 0).to_dense())
    uncached_factor, uncached_error = update_factor_uncached(
        unfolded, start[0], start[2], start[1]
    )
    assert cached_factor == uncached_factor
    assert cached_error == uncached_error
