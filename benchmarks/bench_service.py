"""Service-layer benchmark: a multi-tenant fleet through one worker pool.

    python benchmarks/bench_service.py [--smoke]

Drives 32 jobs from 4 tenants (one with double fair-share weight) through
a single :class:`~repro.service.FactorizationService` per backend and
asserts the service's contracts as floors, like ``bench_plan`` /
``bench_update`` do for theirs:

* **fair share** — when half the fleet has drained, no tenant's
  completed-job share is below half its fair share;
* **kill + resume** — killing the service mid-run and resubmitting the
  same specs yields bit-identical factors and error traces versus the
  uninterrupted run;
* **backend invariance** — serial, thread, and process backends produce
  identical results and identical fair-share schedules;
* **cancellation** — cancelling running jobs releases their leases and
  lets queued jobs activate on the next quantum.

Writes ``BENCH_service.json`` at the repo root: drain wall time and
resume wall time per backend.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.distengine import DEFAULT_CLUSTER
from repro.service import (
    FactorizationService,
    JobSpec,
    JobState,
    ServiceConfig,
    TenantQuota,
)
from repro.tensor import planted_tensor

sys.path.insert(0, str(__import__("pathlib").Path(__file__).resolve().parent))
from _emit import emit, entry  # noqa: E402

BACKENDS = ("serial", "thread", "process")
N_TENANTS = 4
N_JOBS = 32
WEIGHTS = {"tenant-0": 2.0}  # tenant-0 deserves twice the throughput


def build_specs(dim: int, rank: int, iterations: int) -> list[JobSpec]:
    tensor, _ = planted_tensor(
        (dim, dim, dim), rank=rank, factor_density=0.3,
        rng=np.random.default_rng(7),
    )
    return [
        JobSpec(
            tenant=f"tenant-{index % N_TENANTS}",
            tensor=tensor,
            rank=rank,
            max_iterations=iterations,
            seed=index,
        )
        for index in range(N_JOBS)
    ]


def make_config(backend: str, root) -> ServiceConfig:
    return ServiceConfig(
        cluster=DEFAULT_CLUSTER.with_backend(backend, 2),
        checkpoint_root=root,
        max_live_jobs=4,
        quotas={t: TenantQuota(weight=w) for t, w in WEIGHTS.items()},
    )


def fingerprints(service: FactorizationService) -> dict:
    """Bit-level outcome of every DONE job."""
    out = {}
    for job_id, job in service.jobs.items():
        if job.state is not JobState.DONE:
            continue
        result = job.result
        out[job_id] = (
            tuple(factor.words.tobytes() for factor in result.factors),
            tuple(result.errors_per_iteration),
            result.error,
        )
    return out


def drain_fleet(specs, backend, root):
    """Uninterrupted run; returns (wall_s, fingerprints, vtimes)."""
    started = time.perf_counter()
    with FactorizationService(make_config(backend, root)) as service:
        for spec in specs:
            service.submit(spec)
        service.drain()
        wall = time.perf_counter() - started
        assert service.factory.open_leases == 0
        return wall, fingerprints(service), service.scheduler.snapshot()


def kill_then_resume(specs, backend, root):
    """Kill at half-drain (checking fairness there), resume, return results."""
    # Phase 1: run until half the fleet has completed, then "crash".
    service = FactorizationService(make_config(backend, root))
    try:
        for spec in specs:
            service.submit(spec)
        while True:
            done = sum(
                1 for j in service.jobs.values() if j.state is JobState.DONE
            )
            if done >= N_JOBS // 2 or not service.step():
                break
        assert_fair_share(service)
        in_flight = sum(
            1 for j in service.jobs.values()
            if j.state in (JobState.RUNNING, JobState.PENDING)
        )
        assert in_flight > 0, "kill point must leave jobs in flight"
    finally:
        service.close()

    # Phase 2: fresh service, same root, same specs — resume everything.
    started = time.perf_counter()
    with FactorizationService(make_config(backend, root)) as service:
        for spec in specs:
            service.submit(spec)
        service.drain()
        wall = time.perf_counter() - started
        return wall, fingerprints(service)


def assert_fair_share(service) -> None:
    """No tenant's completed share may fall below half its fair share."""
    done_by_tenant = {}
    for job in service.jobs.values():
        if job.state is JobState.DONE:
            done_by_tenant[job.tenant] = done_by_tenant.get(job.tenant, 0) + 1
    total_done = sum(done_by_tenant.values())
    assert total_done >= N_JOBS // 4, f"too few completions ({total_done})"
    weights = {
        f"tenant-{i}": WEIGHTS.get(f"tenant-{i}", 1.0)
        for i in range(N_TENANTS)
    }
    total_weight = sum(weights.values())
    for tenant, weight in weights.items():
        fair = weight / total_weight
        share = done_by_tenant.get(tenant, 0) / total_done
        assert share >= 0.5 * fair, (
            f"{tenant}: completed share {share:.3f} below half its fair "
            f"share {fair:.3f} (completions: {done_by_tenant})"
        )


def assert_cancellation_frees_capacity(specs, root) -> None:
    config = make_config("serial", root)
    with FactorizationService(config) as service:
        for spec in specs[:8]:
            service.submit(spec)
        service.step()
        running = [
            job_id for job_id, job in service.jobs.items()
            if job.state is JobState.RUNNING
        ]
        assert len(running) == config.max_live_jobs
        for job_id in running:
            service.cancel(job_id)
        assert service.factory.open_leases == 0, "cancel must release leases"
        service.step()
        replacements = [
            job_id for job_id, job in service.jobs.items()
            if job.state is JobState.RUNNING
        ]
        assert replacements, "queued jobs must activate after cancellation"
        assert not set(replacements) & set(running)
        service.drain()
        done = sum(1 for j in service.jobs.values() if j.state is JobState.DONE)
        assert done == 8 - len(running)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workload for CI")
    args = parser.parse_args(argv)
    dim = 8 if args.smoke else 14
    rank = 2 if args.smoke else 3
    iterations = 2 if args.smoke else 4

    import tempfile

    specs = build_specs(dim, rank, iterations)
    tenants = {spec.tenant for spec in specs}
    assert len(specs) >= 32 and len(tenants) >= 4

    entries = []
    baselines = {}
    vtimes = {}
    for backend in BACKENDS:
        with tempfile.TemporaryDirectory() as scratch:
            wall, results, vtime = drain_fleet(specs, backend, scratch)
        assert len(results) == N_JOBS
        baselines[backend] = results
        vtimes[backend] = vtime
        entries.append(entry(
            f"service_drain[{backend}]",
            {"backend": backend, "n_jobs": N_JOBS, "n_tenants": N_TENANTS,
             "dim": dim, "rank": rank},
            wall,
        ))
        print(f"{backend:>8}: drained {N_JOBS} jobs in {wall:.2f}s")

        with tempfile.TemporaryDirectory() as scratch:
            resume_wall, resumed = kill_then_resume(specs, backend, scratch)
        assert resumed == results, (
            f"{backend}: kill+resume results differ from uninterrupted run"
        )
        entries.append(entry(
            f"service_kill_resume[{backend}]",
            {"backend": backend, "n_jobs": N_JOBS, "n_tenants": N_TENANTS,
             "dim": dim, "rank": rank},
            resume_wall,
        ))
        print(f"{backend:>8}: kill+resume bit-identical "
              f"(resume leg {resume_wall:.2f}s)")

    for backend in BACKENDS[1:]:
        assert baselines[backend] == baselines["serial"], (
            f"{backend} results differ from serial"
        )
        assert vtimes[backend] == vtimes["serial"], (
            f"{backend} schedule differs from serial"
        )
    print("backend invariance: factors, errors, and schedules identical")

    with tempfile.TemporaryDirectory() as scratch:
        assert_cancellation_frees_capacity(specs, scratch)
    print("cancellation frees capacity")

    emit("BENCH_service.json", entries)
    return 0


if __name__ == "__main__":
    sys.exit(main())
