"""Ablation A5: initialization strategy (fiber sampling vs i.i.d. random).

DESIGN.md §5 documents why this reproduction defaults to fiber-sampled
initial factors: greedy Boolean updates from i.i.d. random factors collapse
to the all-zero local optimum on sparse tensors.  This ablation measures
both strategies on the same planted tensor and records the quality gap the
design decision rests on.
"""

import numpy as np
import pytest

from repro.core import dbtf
from repro.experiments import ResultTable
from repro.tensor import planted_tensor

from _utils import run_series_once, save_table


@pytest.fixture(scope="module")
def tensor():
    rng = np.random.default_rng(0)
    tensor, _ = planted_tensor((32, 32, 32), rank=5, factor_density=0.25, rng=rng)
    return tensor


@pytest.mark.parametrize("initialization", ["sample", "random"])
def test_dbtf_by_initialization(benchmark, tensor, initialization):
    result = benchmark(
        lambda: dbtf(
            tensor, rank=5, seed=0, n_partitions=8,
            initialization=initialization, n_initial_sets=2,
        )
    )
    assert result.error <= tensor.nnz


SEEDS = (0, 1, 2, 3, 4)


def test_initialization_series(benchmark, tensor):
    def build():
        table = ResultTable(
            "Ablation — initialization strategy (mean over "
            f"{len(SEEDS)} seeds)",
            ["strategy", "mean relative error", "collapsed runs"],
        )
        for strategy in ("sample", "random"):
            errors = []
            for seed in SEEDS:
                result = dbtf(
                    tensor, rank=5, seed=seed, n_partitions=8,
                    initialization=strategy, n_initial_sets=1,
                )
                errors.append(result.relative_error)
            collapsed = sum(1 for error in errors if error >= 0.999)
            mean_error = sum(errors) / len(errors)
            table.add_row(strategy, f"{mean_error:.4f}", f"{collapsed}/{len(SEEDS)}")
        return table

    table = run_series_once(benchmark, build)
    save_table(table, "bench_ablation_initialization.txt")
    means = {row[0]: float(row[1]) for row in table.rows}
    collapses = {row[0]: int(row[2].split("/")[0]) for row in table.rows}
    # The documented failure mode: i.i.d. random init usually falls into
    # the absorbing all-zero optimum (a random block covers more zeros
    # than ones); fiber sampling never does.
    assert means["sample"] < means["random"]
    assert collapses["random"] >= len(SEEDS) // 2
    assert collapses["sample"] == 0
