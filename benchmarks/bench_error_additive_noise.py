"""Sec. IV-D reconstruction error vs. additive-noise level.

Additive noise flips zero cells to one (extra 1s, as a fraction of the
noise-free nonzero count).  A Boolean CP model of the planted rank cannot
explain those extra 1s, so every method's error should rise with the level,
and a good method's error should track the amount of injected noise.
"""

import pytest

from repro.core import dbtf
from repro.datasets import ErrorTensorSpec, error_tensor
from repro.experiments import run_additive_noise_sweep

from _utils import run_series_once, save_table

BASE = ErrorTensorSpec(
    shape=(32, 32, 32), rank=5, factor_density=0.2,
    additive_noise=0.0, destructive_noise=0.0,
)


@pytest.mark.parametrize("level", [0.0, 0.1, 0.3])
def test_dbtf_by_additive_noise(benchmark, level):
    spec = ErrorTensorSpec(
        shape=BASE.shape, rank=BASE.rank, factor_density=BASE.factor_density,
        additive_noise=level, destructive_noise=0.0,
    )
    tensor, _ = error_tensor(spec)
    result = benchmark(
        lambda: dbtf(tensor, rank=spec.rank, seed=0, n_partitions=16,
                     n_initial_sets=4)
    )
    assert result.relative_error <= 1.0


def test_error_vs_additive_noise_series(benchmark):
    table = run_series_once(
        benchmark,
        lambda: run_additive_noise_sweep(
            levels=(0.0, 0.1, 0.3), base=BASE, timeout_sec=60.0
        ),
    )
    save_table(table, "bench_error_additive_noise.txt")
    dbtf_errors = [float(cell) for cell in table.column("DBTF")]
    # Noise-free decomposition should be near exact; errors grow with noise.
    assert dbtf_errors[0] < 0.2
    assert dbtf_errors[-1] >= dbtf_errors[0]
