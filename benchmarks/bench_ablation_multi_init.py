"""Ablation A4: multiple initial factor sets (the paper's L parameter).

Algorithm 2 lines 5-8: L random initializations all run through the first
iteration and only the best survives.  More sets cost proportionally more
first-iteration time but can only improve the final error.
"""

import numpy as np
import pytest

from repro.core import dbtf
from repro.experiments import ResultTable
from repro.tensor import planted_tensor

from _utils import run_series_once, save_table


@pytest.fixture(scope="module")
def tensor():
    rng = np.random.default_rng(0)
    tensor, _ = planted_tensor((32, 32, 32), rank=5, factor_density=0.25, rng=rng,
                               additive_noise=0.05)
    return tensor


@pytest.mark.parametrize("n_initial_sets", [1, 4, 8])
def test_dbtf_by_initial_sets(benchmark, tensor, n_initial_sets):
    result = benchmark(
        lambda: dbtf(
            tensor, rank=5, seed=0, n_partitions=16,
            n_initial_sets=n_initial_sets,
        )
    )
    assert result.error <= tensor.nnz


def test_multi_init_series(benchmark, tensor):
    def build():
        table = ResultTable(
            "Ablation — initial sets (L) vs error",
            ["L", "relative error", "iterations"],
        )
        for n_initial_sets in (1, 2, 4, 8):
            result = dbtf(
                tensor, rank=5, seed=0, n_partitions=16,
                n_initial_sets=n_initial_sets,
            )
            table.add_row(
                n_initial_sets,
                f"{result.relative_error:.4f}",
                result.n_iterations,
            )
        return table

    table = run_series_once(benchmark, build)
    save_table(table, "bench_ablation_multi_init.txt")
    errors = [float(cell) for cell in table.column("relative error")]
    # More candidate initializations can only improve the surviving error.
    assert errors == sorted(errors, reverse=True) or min(errors) == errors[-1]
    assert errors[-1] <= errors[0]
