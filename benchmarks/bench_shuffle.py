"""Acceptance gate for the worker-side bucketed shuffle plane.

Four contracts, asserted before BENCH_shuffle.json is written:

* **Routing cost** — at 8 partitions, the driver-side routing CPU of the
  worker-bucketed path (splicing whole buckets, O(partitions)) must be at
  least 3x below the legacy per-pair loop (a ``stable_hash`` plus a
  recursive size estimate for every (key, combiner) pair), measured by the
  ``shuffle_routing_seconds_total`` counter both paths report.
* **Byte parity** — the SHUFFLE ledger charge and the per-bucket byte
  split of the worker path must equal the legacy per-pair accounting
  exactly.
* **Spill under pressure** — with the memory budget set to half the
  probed combine working set (so working set >= 2x budget), map tasks
  must spill runs (``shuffle_spill_total > 0``) and the merged results
  must stay bit-identical.
* **End-to-end bit-identity** — DBTF factors and error traces are
  identical across serial/thread/process on both routing paths, with and
  without a budget.

Usage::

    python benchmarks/bench_shuffle.py            # full workload
    python benchmarks/bench_shuffle.py --smoke    # CI-sized quick run
"""

from __future__ import annotations

import argparse

import numpy as np

from _emit import emit, entry

from repro.core import dbtf
from repro.distengine import ClusterConfig, SimulatedRuntime, TransferKind
from repro.storage import format_size
from repro.tensor import planted_tensor

#: Probe budget large enough that nothing ever spills.
UNLIMITED = 1 << 50

ROUTING_FLOOR = 3.0


def _copy(value):
    return value.copy()


def _add(left, right):
    return left + right


def _keyed_data(n_pairs: int):
    """Many distinct keys with ndarray combiners: the per-pair worst case."""
    n_keys = max(1, n_pairs // 4)
    return [
        (i % n_keys, np.arange(8, dtype=np.int64) + i) for i in range(n_pairs)
    ]


def _combine_run(
    data,
    n_partitions: int,
    worker_shuffle: bool,
    backend: str = "serial",
    memory_budget: "int | None" = None,
):
    """One combine_by_key pass; returns routing/byte/spill facts."""
    runtime = SimulatedRuntime(
        ClusterConfig(
            n_machines=2, cores_per_machine=4, backend=backend, n_workers=2,
            worker_shuffle=worker_shuffle, memory_budget=memory_budget,
        )
    )
    try:
        rdd = runtime.parallelize(data, n_partitions=n_partitions, name="kv")
        import time

        started = time.perf_counter()
        partitions = rdd.combine_by_key(_copy, _add, _add).glom()
        wall_s = time.perf_counter() - started
        counters = runtime.metrics.counters()
        return {
            "wall_s": wall_s,
            "simulated_s": runtime.simulated_time(),
            "fingerprint": tuple(
                tuple((key, value.tobytes()) for key, value in partition)
                for partition in partitions
            ),
            "routing_s": runtime.metrics.value(
                "shuffle_routing_seconds_total", stage="kv.combineByKey"
            ),
            "shuffle_bytes": runtime.ledger.bytes_of_kind(
                TransferKind.SHUFFLE
            ),
            "spill_bytes": runtime.ledger.bytes_of_kind(TransferKind.SPILL),
            "spill_runs": int(
                sum(counters.get("shuffle_spill_total", {}).values())
            ),
            "bucket_split": _bucket_split(runtime),
        }
    finally:
        runtime.close()


def _bucket_split(runtime):
    """Per-bucket byte totals from the shuffle_bucket_bytes histogram."""
    for name, labels, kind, snapshot in runtime.metrics.collect():
        if name == "shuffle_bucket_bytes" and kind == "histogram":
            return (snapshot["count"], snapshot["sum"], snapshot["min"],
                    snapshot["max"], tuple(snapshot["buckets"].values()))
    return None


def _best_routing(data, n_partitions, worker_shuffle, repeats):
    """Minimum routing seconds over ``repeats`` fresh runs."""
    runs = [
        _combine_run(data, n_partitions, worker_shuffle)
        for _ in range(repeats)
    ]
    best = min(runs, key=lambda run: run["routing_s"])
    return best


def _dbtf_fingerprint(tensor, rank, iterations, partitions, backend,
                      worker_shuffle, memory_budget):
    runtime = SimulatedRuntime(
        ClusterConfig(
            n_machines=2, cores_per_machine=2, backend=backend, n_workers=2,
            worker_shuffle=worker_shuffle, memory_budget=memory_budget,
        )
    )
    try:
        import time

        started = time.perf_counter()
        result = dbtf(
            tensor, rank=rank, seed=0, max_iterations=iterations,
            n_partitions=partitions, runtime=runtime,
        )
        wall_s = time.perf_counter() - started
        fingerprint = (
            tuple(factor.words.tobytes() for factor in result.factors),
            result.errors_per_iteration,
        )
        return wall_s, result.report.simulated_time, fingerprint
    finally:
        runtime.close()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--pairs", type=int, default=40_000,
                        help="keyed pairs in the routing workload")
    parser.add_argument("--partitions", type=int, default=8,
                        help="source and target partition count (default 8)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N for the routing measurement")
    parser.add_argument("--dim", type=int, default=24,
                        help="cube side of the DBTF bit-identity check")
    parser.add_argument("--rank", type=int, default=4)
    parser.add_argument("--iterations", type=int, default=2)
    parser.add_argument("--backends", nargs="+",
                        default=["serial", "thread", "process"],
                        choices=["serial", "thread", "process"])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized quick run")
    args = parser.parse_args(argv)
    if args.smoke:
        args.pairs, args.repeats = 8_000, 2
        args.dim, args.rank = 16, 2

    data = _keyed_data(args.pairs)
    print(f"routing workload : {args.pairs} pairs, "
          f"{max(1, args.pairs // 4)} keys, {args.partitions} partitions")

    failures: list[str] = []

    # -- routing cost: worker-bucketed vs legacy per-pair ----------------
    worker = _best_routing(data, args.partitions, True, args.repeats)
    legacy = _best_routing(data, args.partitions, False, args.repeats)
    ratio = legacy["routing_s"] / max(worker["routing_s"], 1e-9)
    print(f"driver routing   : legacy {legacy['routing_s'] * 1e3:.2f} ms, "
          f"worker {worker['routing_s'] * 1e3:.2f} ms  ({ratio:.1f}x less)")
    if ratio < ROUTING_FLOOR:
        failures.append(
            f"routing-cost floor missed: {ratio:.2f}x < {ROUTING_FLOOR}x"
        )

    # -- byte parity: ledger charge and per-bucket split -----------------
    if worker["shuffle_bytes"] != legacy["shuffle_bytes"]:
        failures.append(
            f"SHUFFLE ledger parity broken: worker {worker['shuffle_bytes']} "
            f"!= legacy {legacy['shuffle_bytes']}"
        )
    if worker["bucket_split"] != legacy["bucket_split"]:
        failures.append("per-bucket byte split differs between paths")
    if worker["fingerprint"] != legacy["fingerprint"]:
        failures.append("combine results differ between routing paths")
    print(f"byte parity      : {worker['shuffle_bytes']} shuffle bytes on "
          f"both paths, per-bucket split identical")

    # -- spill under pressure: budget = probed working set / 2 -----------
    probe = _combine_run(data, args.partitions, True, memory_budget=UNLIMITED)
    if probe["spill_runs"]:
        failures.append("probe budget must never spill")
    working_set = probe["shuffle_bytes"]
    budget_bytes = max(working_set // 2, 1)
    print(f"combine working set {format_size(working_set)}, budget "
          f"{format_size(budget_bytes)} "
          f"(pressure {working_set / budget_bytes:.1f}x)")
    spilled = {
        backend: _combine_run(
            data, args.partitions, True, backend=backend,
            memory_budget=budget_bytes,
        )
        for backend in args.backends
    }
    for backend, stats in spilled.items():
        if stats["spill_runs"] <= 0:
            failures.append(f"{backend}: no spill runs under 2x pressure")
        if stats["fingerprint"] != worker["fingerprint"]:
            failures.append(f"{backend}: budgeted combine results differ")
        print(f"spill [{backend:<8}]: {stats['spill_runs']} runs, "
              f"{format_size(stats['spill_bytes'])} spill I/O, "
              f"bit-identical "
              f"{stats['fingerprint'] == worker['fingerprint']}")

    # -- DBTF end-to-end bit-identity across backends and paths ----------
    tensor, _ = planted_tensor(
        (args.dim,) * 3, rank=args.rank, factor_density=0.2,
        rng=np.random.default_rng(7),
    )
    dbtf_entries = []
    reference = None
    for worker_shuffle in (True, False):
        for memory_budget in (None, 1 << 20):
            for backend in args.backends:
                wall_s, simulated_s, fingerprint = _dbtf_fingerprint(
                    tensor, args.rank, args.iterations, 3, backend,
                    worker_shuffle, memory_budget,
                )
                if reference is None:
                    reference = fingerprint
                elif fingerprint != reference:
                    failures.append(
                        f"dbtf results differ: backend={backend} "
                        f"worker_shuffle={worker_shuffle} "
                        f"budget={memory_budget}"
                    )
                dbtf_entries.append(
                    entry(
                        "shuffle_dbtf_identity",
                        {"backend": backend,
                         "worker_shuffle": worker_shuffle,
                         "budgeted": memory_budget is not None,
                         "dim": args.dim, "rank": args.rank},
                        wall_s, simulated_s,
                    )
                )
    print(f"dbtf identity    : {len(dbtf_entries)} runs "
          f"({'all identical' if reference is not None and not failures else 'CHECK FAILURES'})")

    entries = [
        entry("shuffle_routing_worker",
              {"pairs": args.pairs, "partitions": args.partitions,
               "routing_s": worker["routing_s"],
               "shuffle_bytes": int(worker["shuffle_bytes"])},
              worker["wall_s"], worker["simulated_s"]),
        entry("shuffle_routing_driver",
              {"pairs": args.pairs, "partitions": args.partitions,
               "routing_s": legacy["routing_s"],
               "shuffle_bytes": int(legacy["shuffle_bytes"]),
               "routing_ratio": ratio, "floor": ROUTING_FLOOR},
              legacy["wall_s"], legacy["simulated_s"]),
    ]
    for backend, stats in spilled.items():
        entries.append(
            entry(f"shuffle_spill_{backend}",
                  {"pairs": args.pairs, "partitions": args.partitions,
                   "budget_bytes": int(budget_bytes),
                   "spill_runs": stats["spill_runs"],
                   "spill_bytes": int(stats["spill_bytes"])},
                  stats["wall_s"], stats["simulated_s"])
        )
    entries.extend(dbtf_entries)
    emit("BENCH_shuffle.json", entries)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(f"routing {ratio:.1f}x cheaper, bytes identical, spill active "
          f"under pressure, dbtf bit-identical everywhere")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
