"""Tables I and III.

Table I (the scalability matrix) is derived from measured Figure 1 sweeps:
a method rates "High" on an axis when it completed every point.  The paper's
version:

    Method        Dimensionality  Density  Rank  Distributed
    Walk'n'Merge  Low             Low      High  No
    BCP_ALS       Low             High     High  No
    DBTF          High            High     High  Yes

Table III pairs the paper-scale dataset metadata with the scaled stand-ins.
"""

from repro.experiments import run_density, run_dimensionality, run_rank, table1, table3

from _utils import run_series_once, save_table


def test_table1_summary(benchmark):
    def build():
        dims = run_dimensionality(exponents=(4, 5, 6, 7), timeout_sec=20.0)
        dens = run_density(densities=(0.05, 0.2), exponent=5, timeout_sec=20.0)
        rank = run_rank(ranks=(10, 30), exponent=5, timeout_sec=20.0)
        return table1(dimensionality=dims, density=dens, rank=rank)

    table = run_series_once(benchmark, build)
    save_table(table, "bench_table1.txt")
    ratings = {row[0]: row[1:] for row in table.rows}
    assert ratings["DBTF"] == ["High", "High", "High", "Yes"]
    # BCP_ALS fails on dimensionality (its association matrix blows up).
    assert ratings["BCP_ALS"][0] == "Low"


def test_table3_datasets(benchmark):
    table = run_series_once(benchmark, table3)
    save_table(table, "bench_table3.txt")
    assert len(table.rows) == 6
