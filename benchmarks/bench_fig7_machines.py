"""Figure 7: machine scalability of DBTF.

Paper: on I = J = K = 2^12, density 0.01, rank 10, DBTF speeds up 2.2x when
going from 4 to 16 machines (near-linear, sublinear because of the
driver-side column-update barrier and per-iteration broadcasts).  Here the
decomposition runs once on the simulated engine and the recorded schedule
is replayed for each machine count.
"""

from repro.experiments import run_machine_scalability

from _utils import run_series_once, save_table


def test_figure7_series(benchmark):
    table = run_series_once(
        benchmark,
        lambda: run_machine_scalability(
            machines=(4, 8, 16), exponent=6, max_iterations=3
        ),
    )
    save_table(table, "bench_figure7.txt")
    speedups = [float(cell) for cell in table.column("speed-up T4/T_M")]
    assert speedups[0] == 1.0
    # More machines never slow the run down, and 16 machines give a real
    # speed-up over 4 (the paper reports 2.2x).
    assert speedups == sorted(speedups)
    assert 1.5 <= speedups[-1] <= 4.0
