"""Extension: N-way Boolean CP.

Times the general-order solver on three- and four-way planted tensors (the
paper's intro motivates 4-way network logs) and checks that the 3-way
special case lands near DBTF's quality on the same data.
"""

import numpy as np
import pytest

from repro.nway import NwayCpConfig, cp_nway, nway_reconstruct
from repro.bitops import BitMatrix


def planted(shape, rank, seed, density=0.3):
    rng = np.random.default_rng(seed)
    factors = tuple(
        BitMatrix.from_dense((rng.random((dim, rank)) < density).astype(np.uint8))
        for dim in shape
    )
    return nway_reconstruct(factors)


@pytest.mark.parametrize("shape", [(24, 24, 24), (12, 12, 12, 12)])
def test_cp_nway(benchmark, shape):
    tensor = planted(shape, rank=3, seed=0)
    result = benchmark(
        lambda: cp_nway(
            tensor,
            config=NwayCpConfig(rank=3, n_initial_sets=2, max_iterations=5),
        )
    )
    assert result.error <= tensor.nnz


def test_four_way_recovery_series(benchmark):
    tensor = planted((12, 12, 12, 12), rank=2, seed=1, density=0.35)

    def build():
        return cp_nway(
            tensor, config=NwayCpConfig(rank=2, n_initial_sets=4)
        )

    result = benchmark.pedantic(build, rounds=1, iterations=1)
    print(f"\n4-way relative error: {result.relative_error:.3f}")
    assert result.relative_error < 0.5
