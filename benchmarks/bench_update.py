"""Factor-update comms A/B: broadcast handles + deltas vs eager closures.

The broadcast-handle plane's claim (DESIGN.md §11): with
``ClusterConfig(handle_broadcasts=True)`` the per-column traffic of the
factor-update sweep drops from O(n_rows·words + outer + inner) serialized
closure bytes per task to an O(n_rows/8) packed column delta — at least
5x at rank 8, dim 128 — while the factors and error trace stay
bit-identical.  This benchmark runs both modes on the same fixed-seed
planted tensor (eager dispatch, so ledger rows carry clean per-stage
names), asserts the equivalence + reduction contract, times the batched
vs row-loop ``boolean_matmul`` kernel, and writes ``BENCH_update.json``::

    python benchmarks/bench_update.py [--smoke]

Run it after any change to the broadcast plane, payload byte accounting,
or the column-sweep task shapes.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.bitops import BitMatrix
from repro.bitops.ops import _boolean_matmul_batched, _boolean_matmul_rowloop
from repro.core import dbtf
from repro.distengine import ClusterConfig, SimulatedRuntime
from repro.tensor import planted_tensor

sys.path.insert(0, str(__import__("pathlib").Path(__file__).resolve().parent))
from _emit import best_wall_time, emit, entry  # noqa: E402

N_MACHINES = 4
MIN_BYTE_DROP = 5.0


def _run(tensor, rank, max_iterations, n_partitions, handles):
    """One decomposition; returns (fingerprint, per-column bytes, sim time)."""
    with SimulatedRuntime(
        ClusterConfig(n_machines=N_MACHINES, cores_per_machine=2, eager=True,
                      handle_broadcasts=handles)
    ) as runtime:
        result = dbtf(tensor, rank=rank, max_iterations=max_iterations,
                      n_partitions=n_partitions, seed=0, runtime=runtime)
        fingerprint = (
            tuple(factor.words.tobytes() for factor in result.factors),
            tuple(result.errors_per_iteration),
        )
        by_stage = dict(runtime.ledger.by_stage)
        # Driver->worker bytes of the column sweep: the columnErrors task
        # payloads plus the columnUpdate broadcasts, averaged per column
        # stage (rank columns x 3 modes x iterations).
        sweep_bytes = by_stage.get("columnErrors", 0) + by_stage.get(
            "columnUpdate", 0
        )
        n_columns = rank * 3 * len(result.errors_per_iteration)
        return (fingerprint, sweep_bytes / n_columns,
                runtime.simulated_time(N_MACHINES))


def measure(dim: int, rank: int, n_partitions: int, iterations: int,
            repeats: int):
    """Handle-vs-closure comparison on one planted tensor."""
    tensor, _ = planted_tensor(
        (dim, dim, dim), rank=rank, factor_density=0.1,
        rng=np.random.default_rng(7),
    )
    params = {"dim": dim, "rank": rank, "n_partitions": n_partitions,
              "iterations": iterations}

    records = []
    outcomes = {}
    for mode, handles in (("handles", True), ("closures", False)):
        wall, (fingerprint, per_column, simulated) = best_wall_time(
            lambda handles=handles: _run(tensor, rank, iterations,
                                         n_partitions, handles),
            repeats=repeats,
        )
        outcomes[mode] = {"fingerprint": fingerprint,
                          "per_column": per_column}
        records.append(
            entry(f"update_{mode}",
                  {**params, "per_column_bytes": per_column},
                  wall_s=wall, simulated_s=simulated)
        )

    # Equivalence half of the contract: the comms plane may only change
    # how bytes move, never what the sweep computes.
    if outcomes["handles"]["fingerprint"] != outcomes["closures"]["fingerprint"]:
        raise AssertionError(
            "handle and closure runs diverged: factors and error traces "
            "must be bit-identical"
        )
    drop = outcomes["closures"]["per_column"] / outcomes["handles"]["per_column"]
    if drop < MIN_BYTE_DROP:
        raise AssertionError(
            f"per-column broadcast bytes dropped only {drop:.2f}x "
            f"(closures {outcomes['closures']['per_column']:.0f} B -> "
            f"handles {outcomes['handles']['per_column']:.0f} B); "
            f"expected >= {MIN_BYTE_DROP}x at rank {rank}, dim {dim}"
        )
    records.append(
        entry("per_column_byte_drop", {**params, "drop": drop},
              wall_s=0.0, simulated_s=None)
    )

    # The batched kernel the rewired sweep leans on, vs its loop baseline.
    rng = np.random.default_rng(3)
    left = BitMatrix.random(256, 64, 0.2, rng)
    right = BitMatrix.random(64, 1024, 0.2, rng)
    loop_wall, loop_product = best_wall_time(
        lambda: _boolean_matmul_rowloop(left, right), repeats=max(repeats, 3)
    )
    batched_wall, batched_product = best_wall_time(
        lambda: _boolean_matmul_batched(left, right), repeats=max(repeats, 3)
    )
    if batched_product != loop_product:
        raise AssertionError("batched boolean_matmul diverged from row loop")
    kernel_params = {"shape": [256, 64, 1024]}
    records.append(entry("boolean_matmul_rowloop", kernel_params,
                         wall_s=loop_wall))
    records.append(entry("boolean_matmul_batched", kernel_params,
                         wall_s=batched_wall))
    summary = {
        "per_column_handles": outcomes["handles"]["per_column"],
        "per_column_closures": outcomes["closures"]["per_column"],
        "drop": drop,
        "matmul_speedup": loop_wall / batched_wall,
    }
    return records, summary


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dim", type=int, default=128)
    parser.add_argument("--rank", type=int, default=8)
    parser.add_argument("--partitions", type=int, default=4)
    parser.add_argument("--iterations", type=int, default=2)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized quick run (same rank-8/dim-128 "
                             "contract point, fewer iterations/repeats)")
    args = parser.parse_args(argv)
    if args.smoke:
        args.iterations = 1
        args.repeats = 1

    records, summary = measure(args.dim, args.rank, args.partitions,
                               args.iterations, args.repeats)
    emit("BENCH_update.json", records)
    print(
        f"per-column bytes: closures={summary['per_column_closures']:.0f} "
        f"handles={summary['per_column_handles']:.0f} "
        f"({summary['drop']:.1f}x drop); "
        f"boolean_matmul batched {summary['matmul_speedup']:.1f}x"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
