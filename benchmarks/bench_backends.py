"""Wall-clock comparison of the stage-executor backends.

Times the two heavyweight DBTF phases — partition-and-pack (Algorithm 3,
``prepare_partitioned_unfoldings``) and one full factor-update sweep
(Algorithm 4, ``update_factor``) — under each backend, verifies that the
outputs are bit-identical, and prints per-phase speedups over serial.

The engine's metered quantities (per-task durations, ledger bytes,
``simulated_time``) are backend-invariant by construction; only the *host*
wall clock changes.  On a single-core host every backend necessarily ties
(pool overhead aside), so the report always includes ``os.cpu_count()`` —
the acceptance target of >= 2x for thread/process applies on hosts with
four or more cores.

Also estimates the cost of the per-construction defensive partition copy
that ``Distributed.__init__`` used to make (it now takes ownership;
copying happens once at ``parallelize``/``from_partitions`` ingestion).

Usage::

    python benchmarks/bench_backends.py               # 256^3 tensor
    python benchmarks/bench_backends.py --smoke       # CI-sized quick run
    python benchmarks/bench_backends.py --dim 128 --backends serial process
"""

from __future__ import annotations

import argparse
import os
import time

import numpy as np

from repro.bitops import BitMatrix
from repro.core import DbtfConfig
from repro.core.decompose import prepare_partitioned_unfoldings
from repro.core.update import update_factor
from repro.distengine import DEFAULT_CLUSTER, SimulatedRuntime
from repro.tensor import planted_tensor


def _initial_factors(shape, rank):
    rng = np.random.default_rng(0)
    return [
        BitMatrix.from_dense(
            (rng.random((dimension, rank)) < 0.3).astype(np.uint8)
        )
        for dimension in shape
    ]


def _run_backend(name, tensor, args):
    """One measured prepare + factor-update sweep; returns times + fingerprint."""
    config = DbtfConfig(rank=args.rank, n_partitions=args.partitions)
    with SimulatedRuntime(
        DEFAULT_CLUSTER.with_backend(name, args.workers)
    ) as runtime:
        started = time.perf_counter()
        mode_rdds = prepare_partitioned_unfoldings(
            tensor, args.partitions, runtime
        )
        prepare_seconds = time.perf_counter() - started

        factors = _initial_factors(tensor.shape, args.rank)
        outer_inner = {0: (2, 1), 1: (2, 0), 2: (0, 1)}
        updated_words = []
        errors = []
        started = time.perf_counter()
        for mode in range(3):
            outer, inner = outer_inner[mode]
            updated, error = update_factor(
                mode_rdds[mode],
                factors[mode],
                factors[outer],
                factors[inner],
                config,
                runtime,
            )
            updated_words.append(updated.words.tobytes())
            errors.append(error)
        update_seconds = time.perf_counter() - started

        fingerprint = (
            tuple(updated_words),
            tuple(errors),
            len(runtime.stages),
            tuple(sorted(runtime.ledger.by_stage.items())),
        )
        copy_seconds = _copy_cost(mode_rdds) * len(runtime.stages)
    return prepare_seconds, update_seconds, copy_seconds, fingerprint


def _copy_cost(mode_rdds):
    """Seconds one `[list(p) for p in partitions]` pass over the data costs."""
    started = time.perf_counter()
    for rdd in mode_rdds:
        _ = rdd.glom()
    return time.perf_counter() - started


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dim", type=int, default=256,
                        help="cube side length (default 256)")
    parser.add_argument("--rank", type=int, default=8)
    parser.add_argument("--partitions", type=int, default=8)
    parser.add_argument("--workers", type=int, default=None,
                        help="pool size for thread/process (default: all cores)")
    parser.add_argument("--backends", nargs="+",
                        default=["serial", "thread", "process"],
                        choices=["serial", "thread", "process"])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workload for CI (32^3, rank 4)")
    args = parser.parse_args(argv)
    if args.smoke:
        args.dim, args.rank, args.partitions = 32, 4, 4

    cores = os.cpu_count() or 1
    print(f"host cores     : {cores}")
    print(f"tensor         : {args.dim}^3, planted rank {args.rank}, "
          f"{args.partitions} partitions")
    if cores < 4:
        print("note           : < 4 cores — parallel backends cannot show "
              "their >= 2x target here")

    rng = np.random.default_rng(7)
    tensor, _ = planted_tensor(
        (args.dim,) * 3, rank=args.rank, factor_density=0.1, rng=rng
    )
    print(f"nonzeros       : {tensor.nnz}")
    print()

    rows = []
    fingerprints = {}
    for name in args.backends:
        prepare_s, update_s, copy_s, fingerprint = _run_backend(
            name, tensor, args
        )
        rows.append((name, prepare_s, update_s, copy_s))
        fingerprints[name] = fingerprint

    reference = fingerprints[args.backends[0]]
    identical = all(fp == reference for fp in fingerprints.values())

    base_prepare, base_update = rows[0][1], rows[0][2]
    print(f"{'backend':<10}{'prepare (s)':>14}{'update (s)':>14}"
          f"{'prep x':>8}{'upd x':>8}")
    for name, prepare_s, update_s, _copy_s in rows:
        print(f"{name:<10}{prepare_s:>14.3f}{update_s:>14.3f}"
              f"{base_prepare / prepare_s:>8.2f}{base_update / update_s:>8.2f}")
    print()
    print(f"outputs bit-identical across backends: {identical}")
    copy_s = rows[0][3]
    total_s = rows[0][1] + rows[0][2]
    print(f"removed per-stage defensive copy would have cost ~{copy_s:.3f} s "
          f"over this run ({100 * copy_s / total_s:.0f}% of serial "
          f"prepare+update time)")
    return 0 if identical else 1


if __name__ == "__main__":
    raise SystemExit(main())
