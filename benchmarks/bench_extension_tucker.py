"""Extension: Boolean Tucker decomposition.

The journal extension of DBTF generalizes from CP (hyper-diagonal core) to
Tucker (arbitrary binary core).  This bench times the Tucker solver on a
planted Tucker tensor and checks the structural advantage: with a dense
core, Tucker at a small per-mode budget fits data that CP at the same
factor width cannot.
"""

import numpy as np
import pytest

from repro.core import dbtf
from repro.tensor import SparseBoolTensor
from repro.tucker import BooleanTuckerConfig, boolean_tucker
from repro.tucker.decompose import _reconstruct_dense


def planted_tucker_tensor(side, core_side, seed, core_density=1.0):
    rng = np.random.default_rng(seed)
    factors = tuple(
        (rng.random((side, core_side)) < 0.25).astype(np.uint8) for _ in range(3)
    )
    core = (rng.random((core_side,) * 3) < core_density).astype(np.uint8)
    return SparseBoolTensor.from_dense(_reconstruct_dense(core, factors))


@pytest.mark.parametrize("core_side", [2, 3])
def test_boolean_tucker(benchmark, core_side):
    tensor = planted_tucker_tensor(24, core_side, seed=0)
    result = benchmark(
        lambda: boolean_tucker(
            tensor,
            config=BooleanTuckerConfig(
                core_shape=(core_side,) * 3, n_initial_sets=2, max_iterations=5
            ),
        )
    )
    assert result.error <= tensor.nnz


def test_distributed_tucker(benchmark):
    from repro.tucker import BooleanTuckerConfig, dbtf_tucker

    tensor = planted_tucker_tensor(24, 3, seed=2, core_density=0.5)
    result = benchmark(
        lambda: dbtf_tucker(
            tensor,
            config=BooleanTuckerConfig(core_shape=(3, 3, 3), max_iterations=5),
            n_partitions=8,
        )
    )
    assert result.error <= tensor.nnz


def test_tucker_beats_matched_cp_series(benchmark):
    tensor = planted_tucker_tensor(24, 2, seed=1, core_density=1.0)

    def build():
        tucker_result = boolean_tucker(
            tensor,
            config=BooleanTuckerConfig(core_shape=(2, 2, 2), n_initial_sets=4),
        )
        cp_result = dbtf(tensor, rank=2, seed=0, n_partitions=4, n_initial_sets=4)
        return tucker_result, cp_result

    tucker_result, cp_result = benchmark.pedantic(build, rounds=1, iterations=1)
    print(f"\nTucker error: {tucker_result.error}  "
          f"CP (rank 2) error: {cp_result.error}")
    assert tucker_result.error <= cp_result.error
