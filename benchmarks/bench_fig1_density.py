"""Figure 1(b): runtime vs. tensor density.

Paper: density 0.01..0.3 at I = J = K = 2^8, rank 10; DBTF shows near
constant runtime across densities (716x faster than Walk'n'Merge, 13x than
BCP_ALS).  Scaled to 2^6 here.
"""

import pytest

from repro.core import dbtf
from repro.datasets import scalability_tensor
from repro.experiments import run_density

from _utils import run_series_once, save_table

EXPONENT = 6
RANK = 10


@pytest.mark.parametrize("density", [0.01, 0.1, 0.3])
def test_dbtf_by_density(benchmark, density):
    tensor = scalability_tensor(EXPONENT, density, seed=0)
    result = benchmark(
        lambda: dbtf(tensor, rank=RANK, seed=0, n_partitions=16, max_iterations=3)
    )
    assert result.error <= tensor.nnz


def test_figure1b_series(benchmark):
    table = run_series_once(
        benchmark,
        lambda: run_density(
            densities=(0.01, 0.1, 0.3), exponent=EXPONENT, timeout_sec=20.0
        ),
    )
    save_table(table, "bench_figure1b.txt")
    dbtf_times = [float(cell) for cell in table.column("DBTF (s)")]
    # Near-constant runtime across densities: within an order of magnitude.
    assert max(dbtf_times) <= 10 * min(dbtf_times)
