"""Figure 1(c): runtime vs. rank.

Paper: rank 10..60 at I = J = K = 2^8, density 0.05, V = 15; all methods
scale to rank 60 but DBTF is 43x faster than Walk'n'Merge and 21x faster
than BCP_ALS; Walk'n'Merge's runtime is flat because it ignores the rank.
Ranks above V = 15 exercise the cache-table group split (Lemma 2).
"""

import pytest

from repro.core import dbtf
from repro.datasets import scalability_tensor
from repro.experiments import run_rank

from _utils import run_series_once, save_table

EXPONENT = 6
DENSITY = 0.05


@pytest.mark.parametrize("rank", [10, 30, 60])
def test_dbtf_by_rank(benchmark, rank):
    tensor = scalability_tensor(EXPONENT, DENSITY, seed=0)
    result = benchmark(
        lambda: dbtf(tensor, rank=rank, seed=0, n_partitions=16, max_iterations=2)
    )
    assert result.error <= tensor.nnz


def test_figure1c_series(benchmark):
    table = run_series_once(
        benchmark,
        lambda: run_rank(
            ranks=(10, 30, 60), exponent=EXPONENT, density=DENSITY,
            timeout_sec=30.0,
        ),
    )
    save_table(table, "bench_figure1c.txt")
    assert all(not cell.startswith("O.O.") for cell in table.column("DBTF (s)"))
    # Walk'n'Merge's runtime must be essentially rank-independent.
    wnm = [float(c) for c in table.column("Walk'n'Merge (s)")
           if not c.startswith("O.O.")]
    if len(wnm) == 3:
        assert max(wnm) <= 3 * min(wnm)
