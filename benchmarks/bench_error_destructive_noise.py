"""Sec. IV-D reconstruction error vs. destructive-noise level.

Destructive noise deletes 1s from the noise-free tensor, eroding the
planted blocks.  Walk'n'Merge's merging threshold follows the paper's
setting t = 1 - n_d so its blocks are allowed to be exactly as porous as
the noise makes them.
"""

import pytest

from repro.core import dbtf
from repro.datasets import ErrorTensorSpec, error_tensor
from repro.experiments import run_destructive_noise_sweep

from _utils import run_series_once, save_table

BASE = ErrorTensorSpec(
    shape=(32, 32, 32), rank=5, factor_density=0.2,
    additive_noise=0.0, destructive_noise=0.0,
)


@pytest.mark.parametrize("level", [0.0, 0.1, 0.2])
def test_dbtf_by_destructive_noise(benchmark, level):
    spec = ErrorTensorSpec(
        shape=BASE.shape, rank=BASE.rank, factor_density=BASE.factor_density,
        additive_noise=0.0, destructive_noise=level,
    )
    tensor, _ = error_tensor(spec)
    result = benchmark(
        lambda: dbtf(tensor, rank=spec.rank, seed=0, n_partitions=16,
                     n_initial_sets=4)
    )
    assert result.relative_error <= 1.0


def test_error_vs_destructive_noise_series(benchmark):
    table = run_series_once(
        benchmark,
        lambda: run_destructive_noise_sweep(
            levels=(0.0, 0.1, 0.2), base=BASE, timeout_sec=60.0
        ),
    )
    save_table(table, "bench_error_destructive_noise.txt")
    dbtf_errors = [float(cell) for cell in table.column("DBTF")]
    assert dbtf_errors[0] < 0.2  # noise-free recovery is near exact
