"""Resilience-path benchmarks: checkpoint overhead, retry + speculation cost.

Two entry points share one scenario list:

- ``python -m pytest benchmarks/bench_resilience.py`` runs the scenarios as
  pytest-benchmark timings (``--benchmark-disable`` for a smoke check);
- ``python benchmarks/bench_resilience.py [--smoke]`` times each scenario
  directly and writes ``BENCH_resilience.json`` at the repo root via
  :mod:`_emit`, so future PRs can diff ``wall_s``/``simulated_s``
  mechanically.

The interesting numbers: ``dbtf_checkpoint_on`` vs ``dbtf_checkpoint_off``
bounds the snapshot overhead (the ``checkpoint=None`` fast path must be
free), and the faulty-run scenarios show retry backoff and speculation
changing the *simulated* makespan without touching wall time.
"""

from __future__ import annotations

import argparse
import sys
import tempfile

import numpy as np

from repro.bitops import BitMatrix
from repro.distengine import (
    ClusterConfig,
    FaultInjector,
    RetryPolicy,
    SimulatedRuntime,
    SpeculationConfig,
)
from repro.resilience import (
    CheckpointConfig,
    CheckpointManager,
    factors_state,
)
from repro.tensor import add_additive_noise, planted_tensor

sys.path.insert(0, str(__import__("pathlib").Path(__file__).resolve().parent))
from _emit import best_wall_time, emit, entry  # noqa: E402


def _dbtf_state(dim: int = 512, rank: int = 8) -> dict:
    """A realistically sized dbtf snapshot payload (3 bit-packed factors)."""
    rng = np.random.default_rng(0)
    factors = tuple(BitMatrix.random(dim, rank, 0.3, rng) for _ in range(3))
    return {
        "factors": factors_state(factors),
        "errors": list(range(40, 20, -1)),
        "converged": False,
        "rng_state": np.random.default_rng(0).bit_generator.state,
        "init_index": 0,
    }


def checkpoint_save(directory: str, state: dict) -> None:
    manager = CheckpointManager(
        CheckpointConfig(directory=directory, keep_last=2), "bench"
    )
    manager.save(0, state)


def checkpoint_load(directory: str, state: dict):
    manager = CheckpointManager(
        CheckpointConfig(directory=directory, keep_last=2), "bench"
    )
    manager.save(0, state)
    return manager.load_latest()


def _dbtf_run(dim: int, checkpoint: CheckpointConfig | None):
    from repro.core import dbtf

    rng = np.random.default_rng(11)
    tensor, _ = planted_tensor((dim, dim, dim), rank=2, factor_density=0.3, rng=rng)
    tensor = add_additive_noise(tensor, 0.1, rng)
    with SimulatedRuntime(ClusterConfig(backend="serial")) as runtime:
        dbtf(
            tensor,
            rank=2,
            max_iterations=4,
            n_partitions=4,
            seed=0,
            checkpoint=checkpoint,
            runtime=runtime,
        )
    return runtime


def _faulty_run(speculation: SpeculationConfig | None):
    with SimulatedRuntime(
        ClusterConfig(
            n_machines=4, cores_per_machine=2, backend="serial",
            speculation=speculation,
        ),
        fault_injector=FaultInjector(failure_rate=0.4, max_retries=10, seed=3),
        retry_policy=RetryPolicy(max_retries=10, seed=0),
    ) as runtime:
        data = runtime.parallelize(list(range(256)), n_partitions=16)
        data.map_partitions_with_index(
            lambda index, items: [sum(items)], name="work"
        ).collect()
    return runtime


# --- pytest-benchmark entry points -----------------------------------------

def test_checkpoint_save(benchmark, tmp_path):
    state = _dbtf_state()
    benchmark(lambda: checkpoint_save(str(tmp_path), state))


def test_checkpoint_load(benchmark, tmp_path):
    state = _dbtf_state()
    loaded = benchmark(lambda: checkpoint_load(str(tmp_path), state))
    assert loaded is not None


def test_dbtf_checkpoint_off(benchmark):
    benchmark(lambda: _dbtf_run(16, None))


def test_dbtf_checkpoint_on(benchmark, tmp_path):
    benchmark(
        lambda: _dbtf_run(
            16, CheckpointConfig(directory=str(tmp_path), keep_last=2)
        )
    )


def test_retry_backoff_makespan(benchmark):
    runtime = benchmark(lambda: _faulty_run(None))
    assert runtime.report().total_retry_wait > 0.0


def test_speculation_makespan(benchmark):
    runtime = benchmark(lambda: _faulty_run(SpeculationConfig()))
    assert runtime.report().tasks_speculated > 0


# --- machine-readable emission ---------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workload for CI")
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)
    dim = 16 if args.smoke else 48
    state_dim = 128 if args.smoke else 512

    entries = []
    state = _dbtf_state(dim=state_dim)
    with tempfile.TemporaryDirectory() as scratch:
        wall, _ = best_wall_time(
            lambda: checkpoint_save(scratch, state), args.repeats
        )
        entries.append(entry(
            "checkpoint_save", {"factor_rows": state_dim, "rank": 8}, wall
        ))
        wall, _ = best_wall_time(
            lambda: checkpoint_load(scratch, state), args.repeats
        )
        entries.append(entry(
            "checkpoint_load", {"factor_rows": state_dim, "rank": 8}, wall
        ))

    wall, runtime = best_wall_time(lambda: _dbtf_run(dim, None), args.repeats)
    entries.append(entry(
        "dbtf_checkpoint_off", {"dim": dim, "rank": 2}, wall,
        runtime.simulated_time(),
    ))
    with tempfile.TemporaryDirectory() as scratch:
        wall, runtime = best_wall_time(
            lambda: _dbtf_run(
                dim, CheckpointConfig(directory=scratch, keep_last=2)
            ),
            args.repeats,
        )
    entries.append(entry(
        "dbtf_checkpoint_on", {"dim": dim, "rank": 2}, wall,
        runtime.simulated_time(),
    ))

    wall, runtime = best_wall_time(lambda: _faulty_run(None), args.repeats)
    entries.append(entry(
        "retry_backoff_makespan",
        {"n_partitions": 16, "failure_rate": 0.4}, wall,
        runtime.simulated_time(),
    ))
    wall, runtime = best_wall_time(
        lambda: _faulty_run(SpeculationConfig()), args.repeats
    )
    entries.append(entry(
        "speculation_makespan",
        {"n_partitions": 16, "failure_rate": 0.4, "multiplier": 1.5}, wall,
        runtime.simulated_time(),
    ))

    emit("BENCH_resilience.json", entries)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
