"""Ablation A3: number of vertical partitions N.

Partitioning controls the level of parallelism and the per-column error
collection volume (Lemma 7's O(T·R·I·(M+N)) term).  Too few partitions
starve the cluster; too many inflate driver traffic and per-task overhead.
The factorization result itself is partition-invariant.
"""

import pytest

from repro.core import dbtf
from repro.distengine import SimulatedRuntime
from repro.datasets import scalability_tensor
from repro.experiments import ResultTable

from _utils import run_series_once, save_table

EXPONENT = 6
RANK = 10


@pytest.fixture(scope="module")
def tensor():
    return scalability_tensor(EXPONENT, 0.05, seed=0)


@pytest.mark.parametrize("n_partitions", [1, 4, 16, 64])
def test_dbtf_by_partition_count(benchmark, tensor, n_partitions):
    result = benchmark(
        lambda: dbtf(
            tensor, rank=RANK, seed=0, n_partitions=n_partitions, max_iterations=2
        )
    )
    assert result.error <= tensor.nnz


def test_partition_count_series(benchmark, tensor):
    def build():
        table = ResultTable(
            "Ablation — partitions vs simulated 16-machine time",
            ["N", "simulated (s)", "collect bytes", "error"],
        )
        for n_partitions in (1, 4, 16, 64):
            runtime = SimulatedRuntime()
            result = dbtf(
                tensor, rank=RANK, seed=0, runtime=runtime,
                n_partitions=n_partitions, max_iterations=2,
            )
            table.add_row(
                n_partitions,
                f"{runtime.simulated_time(16):.3f}",
                runtime.report(16).collect_bytes,
                result.error,
            )
        return table

    table = run_series_once(benchmark, build)
    save_table(table, "bench_ablation_partitions.txt")
    errors = set(table.column("error"))
    assert len(errors) == 1  # partitioning never changes the math
    # Collect traffic grows with N (Lemma 7).
    collects = [int(cell) for cell in table.column("collect bytes")]
    assert collects == sorted(collects)
