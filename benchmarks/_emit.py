"""Machine-readable benchmark emission for cross-PR regression tracking.

Benchmark modules that support ``python benchmarks/bench_<name>.py`` call
:func:`emit` to write a ``BENCH_<name>.json`` file at the repo root.  Each
entry follows one schema so future PRs can diff runs mechanically::

    {"name": str, "params": dict, "wall_s": float, "simulated_s": float|null}

``wall_s`` is the best-of-N host wall-clock time; ``simulated_s`` is the
engine's modeled cluster time (``SimulatedRuntime.simulated_time``) where
the scenario has one, else ``null``.
"""

from __future__ import annotations

import json
import pathlib
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

__all__ = ["REPO_ROOT", "entry", "emit", "best_wall_time"]


def entry(
    name: str,
    params: dict,
    wall_s: float,
    simulated_s: float | None = None,
) -> dict:
    """One benchmark record in the shared schema."""
    return {
        "name": name,
        "params": params,
        "wall_s": wall_s,
        "simulated_s": simulated_s,
    }


def best_wall_time(fn, repeats: int = 3):
    """Best-of-``repeats`` wall time of ``fn`` and its last return value."""
    if repeats <= 0:
        raise ValueError(f"repeats must be positive, got {repeats}")
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def emit(filename: str, entries: list[dict]) -> pathlib.Path:
    """Write ``entries`` to ``REPO_ROOT/filename`` and echo a summary."""
    for record in entries:
        missing = {"name", "params", "wall_s", "simulated_s"} - set(record)
        if missing:
            raise ValueError(f"benchmark entry missing fields: {sorted(missing)}")
    path = REPO_ROOT / filename
    path.write_text(json.dumps(entries, indent=1, sort_keys=True) + "\n")
    print(f"wrote {len(entries)} entries to {path}")
    return path
