"""Ablation A2: the cache-table threshold V (Lemma 2's space/time trade-off).

Small V splits the rank into more, smaller cache tables: less memory and
cheaper table construction, but each lookup must OR together one entry per
group.  The factorization result is identical for every V — only cost moves.
"""

import pytest

from repro.core import dbtf
from repro.datasets import scalability_tensor

EXPONENT = 6
RANK = 20  # above the default V=15, so the split is actually exercised


@pytest.fixture(scope="module")
def tensor():
    return scalability_tensor(EXPONENT, 0.05, seed=0)


@pytest.mark.parametrize("group_size", [4, 8, 15, 20])
def test_dbtf_by_v_threshold(benchmark, tensor, group_size):
    result = benchmark(
        lambda: dbtf(
            tensor, rank=RANK, seed=0, n_partitions=16,
            cache_group_size=group_size, max_iterations=2,
        )
    )
    assert result.error <= tensor.nnz


def test_v_does_not_change_result(tensor):
    errors = set()
    for group_size in (4, 15, 20):
        result = dbtf(
            tensor, rank=RANK, seed=0, n_partitions=16,
            cache_group_size=group_size, max_iterations=2,
        )
        errors.add(result.error)
    assert len(errors) == 1
