"""Sec. IV-D reconstruction error vs. planted rank.

Each point plants a tensor of the given Boolean rank and factorizes it at
that same rank; relative errors are compared across methods.
"""

import pytest

from repro.core import dbtf
from repro.datasets import ErrorTensorSpec, error_tensor
from repro.experiments import run_rank_sweep

from _utils import run_series_once, save_table

BASE = ErrorTensorSpec(shape=(32, 32, 32), rank=5, factor_density=0.2)


@pytest.mark.parametrize("rank", [3, 5, 8])
def test_dbtf_by_planted_rank(benchmark, rank):
    spec = ErrorTensorSpec(
        shape=BASE.shape, rank=rank, factor_density=BASE.factor_density,
        additive_noise=BASE.additive_noise, destructive_noise=BASE.destructive_noise,
    )
    tensor, _ = error_tensor(spec)
    result = benchmark(
        lambda: dbtf(tensor, rank=rank, seed=0, n_partitions=16, n_initial_sets=4)
    )
    assert result.relative_error <= 1.0


def test_error_vs_rank_series(benchmark):
    table = run_series_once(
        benchmark,
        lambda: run_rank_sweep(ranks=(3, 5, 8), base=BASE, timeout_sec=60.0),
    )
    save_table(table, "bench_error_rank.txt")
    dbtf_errors = [float(cell) for cell in table.column("DBTF")]
    assert all(error < 1.0 for error in dbtf_errors)
