"""Overhead of the observability layer, on and off.

The contract from DESIGN.md §Observability: with tracing *off* (the
default), instrumentation adds no measurable cost — ``kernel_span``'s
disabled path is one thread-local read returning a shared no-op context
manager, and ``record_metric`` returns immediately.  The kernel
micro-benchmarks in ``bench_kernels.py`` therefore run untraced code and
must stay flat.  With tracing *on*, the cost is bounded and visible here
rather than discovered in production.

Run with ``pytest benchmarks/bench_observability.py`` (add
``--benchmark-disable`` for a smoke pass).
"""

import numpy as np
import pytest

from repro.core import dbtf
from repro.distengine import ClusterConfig, SimulatedRuntime
from repro.observability.trace import (
    TaskTraceContext,
    activate_task_context,
    deactivate_task_context,
    kernel_span,
    record_metric,
)
from repro.tensor import planted_tensor


def _instrumented_loop(iterations: int) -> int:
    """The shape of a hot kernel: a span and a metric per call."""
    total = 0
    for index in range(iterations):
        with kernel_span("bench.loop", index=index):
            record_metric("bench_ops_total")
            total += index
    return total


def test_kernel_span_disabled_path(benchmark):
    """No active context: the span must cost a thread-local read, not more."""
    assert kernel_span("probe") is kernel_span("probe")  # shared no-op
    total = benchmark(_instrumented_loop, 1000)
    assert total == 499500


def test_kernel_span_enabled_path(benchmark):
    """With an active context every call records — the price of tracing."""

    def traced():
        context = TaskTraceContext()
        activate_task_context(context)
        try:
            total = _instrumented_loop(1000)
        finally:
            deactivate_task_context()
        assert len(context.kernels) == 1000
        return total

    assert benchmark(traced) == 499500


def _dbtf_run(tracing: bool) -> int:
    tensor, _ = planted_tensor(
        (12, 12, 12), rank=2, factor_density=0.3,
        rng=np.random.default_rng(5),
    )
    with SimulatedRuntime(
        ClusterConfig(n_machines=2, cores_per_machine=2, tracing=tracing)
    ) as runtime:
        result = dbtf(tensor, rank=2, max_iterations=2, n_partitions=3,
                      seed=0, runtime=runtime)
    if tracing:
        assert len(runtime.tracer) > 0
    else:
        assert runtime.tracer is None
    return result.error


@pytest.mark.parametrize("tracing", [False, True], ids=["off", "on"])
def test_dbtf_end_to_end(benchmark, tracing):
    """Whole-decomposition cost with the tracer off vs. on."""
    benchmark.pedantic(_dbtf_run, args=(tracing,), rounds=3, iterations=1)
