"""Temporal community detection in a social network (the Facebook scenario).

A user x user x time Boolean tensor records who interacted with whom and
when.  Boolean CP components are *temporal communities*: a group of users
densely interacting during a window of time.  This example plants
communities (including two that share members), factorizes with DBTF and
with BCP_ALS, and reports how well each recovers the planted structure.

Run:  python examples/temporal_communities.py
"""

import numpy as np

from repro import dbtf
from repro.baselines import bcp_als
from repro.bitops import BitMatrix
from repro.metrics import factor_match_score
from repro.tensor import SparseBoolTensor, outer_product, random_tensor

N_USERS = 80
N_TIMESTEPS = 24


def make_community(members, start, stop, n_users, n_timesteps):
    """One community: a members x members block over a time window."""
    user_vector = np.zeros(n_users, dtype=np.uint8)
    user_vector[members] = 1
    time_vector = np.zeros(n_timesteps, dtype=np.uint8)
    time_vector[start:stop] = 1
    return user_vector, user_vector.copy(), time_vector


def synthesize_network(rng):
    communities = [
        make_community(range(0, 15), 2, 8, N_USERS, N_TIMESTEPS),
        make_community(range(20, 38), 6, 14, N_USERS, N_TIMESTEPS),
        make_community(range(45, 60), 0, 10, N_USERS, N_TIMESTEPS),
        # Overlapping community sharing users 55-70 with the previous one.
        make_community(range(55, 72), 12, 22, N_USERS, N_TIMESTEPS),
    ]
    tensor = None
    for community in communities:
        block = outer_product(*community)
        tensor = block if tensor is None else tensor.boolean_or(block)
    noise = random_tensor((N_USERS, N_USERS, N_TIMESTEPS), density=0.001, rng=rng)
    planted = tuple(
        BitMatrix.from_dense(np.stack(vectors, axis=1))
        for vectors in zip(*communities)
    )
    return tensor.boolean_or(noise), planted


def describe(name, factors, planted, tensor):
    from repro.metrics import relative_reconstruction_error

    match = factor_match_score(factors, planted)
    error = relative_reconstruction_error(tensor, factors)
    print(f"{name}:")
    print(f"  relative error       : {error:.3f}")
    print(f"  community match score: {match:.3f}")
    a_matrix, _, c_matrix = factors
    for component in range(a_matrix.n_cols):
        users = np.flatnonzero(a_matrix.column(component))
        times = np.flatnonzero(c_matrix.column(component))
        if users.size == 0 or times.size == 0:
            continue
        print(f"  community {component}: {users.size} users, "
              f"active t={times.min()}..{times.max()}")
    print()


def main() -> None:
    rng = np.random.default_rng(3)
    tensor, planted = synthesize_network(rng)
    print(f"interaction tensor: {tensor.nnz} events over {N_USERS} users, "
          f"{N_TIMESTEPS} timesteps\n")

    dbtf_result = dbtf(tensor, rank=4, seed=0, n_initial_sets=6)
    describe("DBTF", dbtf_result.factors, planted, tensor)

    bcp_result = bcp_als(tensor, rank=4)
    describe("BCP_ALS", bcp_result.factors, planted, tensor)


if __name__ == "__main__":
    main()
