"""Choosing the Boolean rank with MDL, and going beyond CP with Tucker.

Boolean tensor factorization needs the rank as an input, but real data does
not come labelled with one.  This example:

1. plants a tensor with a known Boolean rank,
2. sweeps candidate ranks and picks the MDL-optimal one
   (shortest factors-plus-error encoding), and
3. compares the chosen CP model against a Boolean Tucker decomposition
   with a matched component budget.

Run:  python examples/rank_selection.py
"""

import numpy as np

from repro import dbtf, planted_tensor
from repro.metrics import description_length, select_rank
from repro.tucker import BooleanTuckerConfig, boolean_tucker

PLANTED_RANK = 4


def main() -> None:
    rng = np.random.default_rng(21)
    tensor, _ = planted_tensor(
        (32, 32, 32), rank=PLANTED_RANK, factor_density=0.25, rng=rng,
        additive_noise=0.05,
    )
    print(f"input tensor: {tensor} (planted Boolean rank {PLANTED_RANK})\n")

    candidate_ranks = (1, 2, 4, 6, 10)
    selection = select_rank(tensor, ranks=candidate_ranks)
    print("MDL rank sweep (shorter is better):")
    print(selection.table())
    print(f"\nselected rank: {selection.best_rank} "
          f"(planted: {PLANTED_RANK})\n")

    cp_result = dbtf(tensor, rank=selection.best_rank, seed=0, n_initial_sets=4)
    cp_bits = description_length(tensor, cp_result.factors)
    print(f"CP model    : error={cp_result.error} "
          f"({cp_result.relative_error:.3f} relative), {cp_bits:.0f} bits")

    core_side = max(2, selection.best_rank // 2)
    tucker_result = boolean_tucker(
        tensor,
        config=BooleanTuckerConfig(
            core_shape=(core_side,) * 3, n_initial_sets=4
        ),
    )
    print(f"Tucker model: error={tucker_result.error} "
          f"({tucker_result.relative_error:.3f} relative), "
          f"core {core_side}x{core_side}x{core_side} with "
          f"{tucker_result.core.nnz} active entries")


if __name__ == "__main__":
    main()
