"""Kill a checkpointed DBTF run mid-flight, then resume it bit-identically.

A child Python process runs ``dbtf`` with checkpointing enabled and hard-kills
itself (``os._exit`` — no cleanup, no exception handlers, the closest thing
to ``kill -9`` that stays portable) right after the iteration-1 snapshot
lands on disk.  The parent then resumes from the surviving checkpoint and
verifies the result is bit-identical to a run that was never interrupted:
same error trace, same factor matrices, same convergence flag.

Run:  python examples/resume_after_kill.py
"""

import os
import subprocess
import sys
import tempfile

import numpy as np

from repro import dbtf, planted_tensor
from repro.resilience import CheckpointConfig
from repro.tensor import add_additive_noise

KILL_EXIT_CODE = 17

#: The child process: same fixed-seed run, but os._exit right after the
#: snapshot for iteration 1 is written.  argv[1] is the checkpoint dir.
CHILD_SCRIPT = """
import os, sys
import numpy as np
from repro import dbtf, planted_tensor
from repro.resilience import CheckpointConfig, CheckpointManager
from repro.tensor import add_additive_noise

original_save = CheckpointManager.save
def save_then_die(self, step, state):
    path = original_save(self, step, state)
    if step == 1:
        os._exit({kill_code})  # hard kill: nothing below this line runs
    return path
CheckpointManager.save = save_then_die

rng = np.random.default_rng(11)
tensor, _ = planted_tensor((10, 10, 10), rank=2, factor_density=0.3, rng=rng)
tensor = add_additive_noise(tensor, 0.1, rng)
dbtf(tensor, rank=2, max_iterations=6, n_partitions=3, seed=0,
     checkpoint=CheckpointConfig(directory=sys.argv[1]))
""".format(kill_code=KILL_EXIT_CODE)


def _make_tensor():
    rng = np.random.default_rng(11)
    tensor, _ = planted_tensor(
        (10, 10, 10), rank=2, factor_density=0.3, rng=rng
    )
    # Noise keeps the run from converging immediately, so the kill lands
    # mid-trajectory and the resumed run has real work left to do.
    return add_additive_noise(tensor, 0.1, rng)


def _run(tensor, checkpoint=None):
    return dbtf(
        tensor, rank=2, max_iterations=6, n_partitions=3, seed=0,
        checkpoint=checkpoint,
    )


def main() -> None:
    tensor = _make_tensor()

    baseline = _run(tensor)
    print(f"uninterrupted run : errors={baseline.errors_per_iteration} "
          f"converged={baseline.converged}")

    with tempfile.TemporaryDirectory() as directory:
        # 1. Child crashes hard after checkpointing iteration 1.
        # The child must find `repro` the same way we did, however this
        # script was launched (PYTHONPATH=src, editable install, pytest).
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
        child = subprocess.run(
            [sys.executable, "-c", CHILD_SCRIPT, directory],
            env=env, capture_output=True, text=True,
        )
        if child.returncode != KILL_EXIT_CODE:
            raise RuntimeError(
                f"child exited with {child.returncode}, expected "
                f"{KILL_EXIT_CODE}:\n{child.stderr}"
            )
        survivors = sorted(
            name for name in os.listdir(directory) if name.endswith(".ckpt")
        )
        print(f"killed mid-run    : exit {child.returncode}, "
              f"surviving checkpoints: {survivors}")

        # 2. Resume from the latest surviving snapshot.
        resumed = _run(
            tensor, CheckpointConfig(directory=directory, resume=True)
        )
        print(f"resumed run       : errors={resumed.errors_per_iteration} "
              f"converged={resumed.converged}")

    # 3. Bit-identical to the uninterrupted run.
    assert resumed.errors_per_iteration == baseline.errors_per_iteration
    assert resumed.converged == baseline.converged
    for restored, original in zip(resumed.factors, baseline.factors):
        assert (restored.words == original.words).all()
    print("resume is bit-identical to the uninterrupted run ✓")


if __name__ == "__main__":
    main()
