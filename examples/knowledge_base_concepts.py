"""Latent concept discovery in a knowledge base (the paper's NELL scenario).

Knowledge bases store subject-relation-object triples ("Seoul - is the
capital of - South Korea"); stacking them gives a Boolean tensor whose
Boolean CP components are *concepts*: a set of subjects connected to a set
of objects through a set of relations.  This example:

1. generates a NELL-like tensor with named entities and planted concepts,
2. factorizes it with DBTF,
3. prints each discovered concept as entity/relation lists, and
4. uses the reconstruction for link prediction on held-out triples.

Run:  python examples/knowledge_base_concepts.py
"""

import numpy as np

from repro import dbtf
from repro.datasets import blocky_tensor
from repro.tensor import SparseBoolTensor, tensor_from_factors

N_SUBJECTS = 120
N_OBJECTS = 120
N_RELATIONS = 16
RANK = 6


def synthesize_knowledge_base(rng):
    """A subject x object x relation tensor with planted concepts."""
    tensor = blocky_tensor(
        shape=(N_SUBJECTS, N_OBJECTS, N_RELATIONS),
        n_blocks=RANK,
        block_dims=((8, 16), (8, 16), (1, 3)),
        rng=rng,
        block_fill=0.85,
        noise_density=0.0005,
    )
    subjects = [f"entity_{i}" for i in range(N_SUBJECTS)]
    objects = [f"entity_{j}" for j in range(N_OBJECTS)]
    relations = [f"relation_{k}" for k in range(N_RELATIONS)]
    return tensor, subjects, objects, relations


def hold_out_triples(tensor, fraction, rng):
    """Split off a fraction of the nonzeros as a link-prediction test set."""
    n_test = max(1, int(fraction * tensor.nnz))
    test_ids = rng.choice(tensor.nnz, size=n_test, replace=False)
    mask = np.zeros(tensor.nnz, dtype=bool)
    mask[test_ids] = True
    train = SparseBoolTensor(tensor.shape, tensor.coords[~mask])
    test_coords = tensor.coords[mask]
    return train, test_coords


def main() -> None:
    rng = np.random.default_rng(7)
    tensor, subjects, objects, relations = synthesize_knowledge_base(rng)
    print(f"knowledge base: {tensor.nnz} triples over "
          f"{N_SUBJECTS} subjects, {N_OBJECTS} objects, {N_RELATIONS} relations")

    train, test_coords = hold_out_triples(tensor, fraction=0.1, rng=rng)
    print(f"held out {test_coords.shape[0]} triples for link prediction\n")

    result = dbtf(train, rank=RANK, seed=0, n_initial_sets=4)
    print(f"factorization: {result}\n")

    a_matrix, b_matrix, c_matrix = result.factors
    for component in range(RANK):
        component_subjects = np.flatnonzero(a_matrix.column(component))
        component_objects = np.flatnonzero(b_matrix.column(component))
        component_relations = np.flatnonzero(c_matrix.column(component))
        if component_subjects.size == 0:
            continue
        print(f"concept {component}:")
        print(f"  subjects : {[subjects[i] for i in component_subjects[:6]]}"
              + (" ..." if component_subjects.size > 6 else ""))
        print(f"  objects  : {[objects[j] for j in component_objects[:6]]}"
              + (" ..." if component_objects.size > 6 else ""))
        print(f"  relations: {[relations[k] for k in component_relations]}")

    # Link prediction: a held-out triple is predicted present when the
    # reconstruction covers it.
    reconstruction = tensor_from_factors(result.factors)
    hits = sum(
        1 for coordinate in test_coords if tuple(coordinate) in reconstruction
    )
    recall = hits / test_coords.shape[0]
    # Compare against random guessing at the reconstruction's density.
    base_rate = reconstruction.density()
    print(f"\nlink prediction on held-out triples:")
    print(f"  recall      : {recall:.3f}")
    print(f"  chance level: {base_rate:.4f}")


if __name__ == "__main__":
    main()
