"""Four-way analysis of network logs with N-way Boolean CP.

The paper's introduction motivates Boolean tensors with network intrusion
logs shaped source IP x destination IP x port x timestamp — a *four-way*
tensor.  DBTF itself is three-way, but the library's N-way extension
(`repro.nway`) handles the general case.  This example plants four-way
attack patterns (a set of sources, a few destinations, a port set, a time
window), factorizes the 4-way tensor directly, and compares against the
common three-way workaround of dropping the port mode.

Run:  python examples/multiway_logs.py
"""

import numpy as np

from repro import dbtf
from repro.nway import NwayCpConfig, cp_nway
from repro.tensor import SparseBoolTensor

N_SOURCES, N_DESTINATIONS, N_PORTS, N_TIMESTEPS = 48, 24, 12, 16
N_ATTACKS = 3


def plant_attacks(rng):
    """Union of 4-way blocks: sources x destinations x ports x window."""
    coords = []
    descriptions = []
    for _ in range(N_ATTACKS):
        sources = rng.choice(N_SOURCES, size=rng.integers(8, 16), replace=False)
        destinations = rng.choice(N_DESTINATIONS, size=rng.integers(2, 4),
                                  replace=False)
        ports = rng.choice(N_PORTS, size=rng.integers(1, 3), replace=False)
        start = int(rng.integers(0, N_TIMESTEPS - 4))
        window = np.arange(start, start + 4)
        grid = np.meshgrid(sources, destinations, ports, window, indexing="ij")
        coords.append(np.stack([axis.ravel() for axis in grid], axis=1))
        descriptions.append(
            f"{sources.size} sources -> dsts {sorted(destinations.tolist())} "
            f"ports {sorted(ports.tolist())} t={start}..{start + 3}"
        )
    shape = (N_SOURCES, N_DESTINATIONS, N_PORTS, N_TIMESTEPS)
    tensor = SparseBoolTensor(shape, np.concatenate(coords))
    return tensor, descriptions


def main() -> None:
    rng = np.random.default_rng(13)
    attacks, descriptions = plant_attacks(rng)
    # Background chatter.
    n_cells = attacks.n_cells
    noise_flat = rng.choice(n_cells, size=n_cells // 500, replace=False)
    noise = SparseBoolTensor(
        attacks.shape, np.stack(np.unravel_index(noise_flat, attacks.shape), axis=1)
    )
    logs = attacks.boolean_or(noise)
    print(f"4-way log tensor: {logs.nnz} events, shape "
          f"{'x'.join(str(s) for s in logs.shape)}")
    print("planted attacks:")
    for description in descriptions:
        print(f"  - {description}")

    result = cp_nway(logs, config=NwayCpConfig(rank=N_ATTACKS, n_initial_sets=6))
    print(f"\n4-way Boolean CP: relative error {result.relative_error:.3f}")
    a, b, p, t = result.factors
    for component in range(N_ATTACKS):
        sources = int(a.column(component).sum())
        destinations = np.flatnonzero(b.column(component))
        ports = np.flatnonzero(p.column(component))
        times = np.flatnonzero(t.column(component))
        if not destinations.size:
            continue
        print(f"  alert {component}: {sources} sources -> "
              f"dsts {destinations.tolist()} ports {ports.tolist()} "
              f"t={times.min()}..{times.max()}")

    # The 3-way workaround: collapse the port mode and run DBTF.
    collapsed_coords = np.unique(logs.coords[:, [0, 1, 3]], axis=0)
    collapsed = SparseBoolTensor(
        (N_SOURCES, N_DESTINATIONS, N_TIMESTEPS), collapsed_coords
    )
    three_way = dbtf(collapsed, rank=N_ATTACKS, seed=0, n_initial_sets=6)
    print(f"\n3-way workaround (port mode dropped): relative error "
          f"{three_way.relative_error:.3f} — ports are no longer attributable")


if __name__ == "__main__":
    main()
