"""Detecting attack traffic in network logs (the paper's CAIDA-DDoS scenario).

DDoS traffic forms dense blocks in the source-IP x destination-IP x time
tensor: many sources hammer a few destinations over a contiguous window.
This example plants attack slabs in background traffic and compares the two
block-discovery approaches the paper evaluates:

* DBTF's Boolean CP components, and
* Walk'n'Merge's random-walk dense blocks,

scoring both on how well their components isolate the attack cells.

Run:  python examples/network_intrusion.py
"""

import numpy as np

from repro import dbtf
from repro.baselines import WalkNMergeConfig, walk_n_merge
from repro.datasets import blocky_tensor
from repro.tensor import outer_product, random_tensor

N_SOURCES = 128
N_DESTINATIONS = 64
N_TIMESTEPS = 48
N_ATTACKS = 4


def synthesize_traffic(rng):
    """Attack slabs plus uniform background chatter; returns both layers."""
    attacks = blocky_tensor(
        shape=(N_SOURCES, N_DESTINATIONS, N_TIMESTEPS),
        n_blocks=N_ATTACKS,
        block_dims=((20, 40), (2, 4), (6, 12)),
        rng=rng,
        block_fill=0.95,
    )
    background = random_tensor(
        (N_SOURCES, N_DESTINATIONS, N_TIMESTEPS), density=0.002, rng=rng
    )
    return attacks.boolean_or(background), attacks


def attack_detection_score(tensor, attacks, factors):
    """Precision/recall of the factorization's coverage on attack cells."""
    rank = factors[0].n_cols
    covered = None
    for component in range(rank):
        block = outer_product(
            factors[0].column(component),
            factors[1].column(component),
            factors[2].column(component),
        )
        covered = block if covered is None else covered.boolean_or(block)
    true_positive = covered.boolean_and(attacks).nnz
    precision = true_positive / covered.nnz if covered.nnz else 0.0
    recall = true_positive / attacks.nnz if attacks.nnz else 1.0
    return precision, recall


def main() -> None:
    rng = np.random.default_rng(11)
    traffic, attacks = synthesize_traffic(rng)
    print(f"traffic tensor : {traffic.nnz} flow records "
          f"({N_SOURCES} sources x {N_DESTINATIONS} destinations x "
          f"{N_TIMESTEPS} timesteps)")
    print(f"attack cells   : {attacks.nnz} "
          f"({attacks.nnz / traffic.nnz:.0%} of traffic)\n")

    dbtf_result = dbtf(traffic, rank=N_ATTACKS, seed=0, n_initial_sets=4)
    precision, recall = attack_detection_score(traffic, attacks, dbtf_result.factors)
    print("DBTF components as attack detectors:")
    print(f"  relative error: {dbtf_result.relative_error:.3f}")
    print(f"  precision     : {precision:.3f}")
    print(f"  recall        : {recall:.3f}\n")

    wnm_result = walk_n_merge(
        traffic,
        rank=N_ATTACKS,
        config=WalkNMergeConfig(density_threshold=0.7, seed=0),
    )
    precision, recall = attack_detection_score(traffic, attacks, wnm_result.factors)
    print("Walk'n'Merge blocks as attack detectors:")
    print(f"  blocks found  : {wnm_result.details['n_blocks']}")
    print(f"  relative error: {wnm_result.relative_error:.3f}")
    print(f"  precision     : {precision:.3f}")
    print(f"  recall        : {recall:.3f}\n")

    # Report the attack windows DBTF isolated.
    _, b_matrix, c_matrix = dbtf_result.factors
    for component in range(N_ATTACKS):
        destinations = np.flatnonzero(b_matrix.column(component))
        times = np.flatnonzero(c_matrix.column(component))
        sources = int(dbtf_result.factors[0].column(component).sum())
        if destinations.size == 0 or times.size == 0:
            continue
        print(f"alert {component}: {sources} sources -> destinations "
              f"{destinations.tolist()} during t={times.min()}..{times.max()}")


if __name__ == "__main__":
    main()
