"""Quickstart: factorize a Boolean tensor with DBTF.

Builds a small three-way Boolean tensor with planted structure, runs the
DBTF decomposition, and inspects the result: reconstruction error, the
recovered factor matrices, and the simulated-cluster cost report.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import dbtf, planted_tensor
from repro.metrics import coverage_stats, factor_match_score


def main() -> None:
    rng = np.random.default_rng(42)

    # A 64x64x64 Boolean tensor that is exactly the Boolean sum of 8
    # rank-1 tensors, plus 10% additive noise.
    tensor, planted_factors = planted_tensor(
        (64, 64, 64), rank=8, factor_density=0.2, rng=rng, additive_noise=0.1
    )
    print(f"input tensor : {tensor}")
    print(f"density      : {tensor.density():.4f}")

    # Decompose.  n_initial_sets (the paper's L) trades time for quality.
    result = dbtf(tensor, rank=8, seed=0, n_initial_sets=4)

    print(f"\nresult        : {result}")
    print(f"error trace   : {result.errors_per_iteration}")
    a_matrix, b_matrix, c_matrix = result.factors
    print(f"factor shapes : A={a_matrix.shape} B={b_matrix.shape} C={c_matrix.shape}")
    print(f"factor density: A={a_matrix.density():.3f} "
          f"B={b_matrix.density():.3f} C={c_matrix.density():.3f}")

    stats = coverage_stats(tensor, result.factors)
    print(f"\nreconstruction precision: {stats['precision']:.3f}")
    print(f"reconstruction recall   : {stats['recall']:.3f}")
    match = factor_match_score(result.factors, planted_factors)
    print(f"planted-factor match    : {match:.3f}")

    report = result.report
    print(f"\nsimulated cluster report ({report.n_machines} machines):")
    print(f"  simulated wall time : {report.simulated_time:.2f} s")
    print(f"  shuffled bytes      : {report.shuffle_bytes:,}")
    print(f"  broadcast bytes     : {report.broadcast_bytes:,}")


if __name__ == "__main__":
    main()
