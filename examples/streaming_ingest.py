"""Out-of-core workflow: stream .mtx slices in, factorize under a budget.

Real datasets often ship as one MatrixMarket file per relation or per time
window (the RESCAL layout), and may not fit comfortably in driver RAM.
This example walks the storage tier end to end on a small on-disk dataset
(``examples/data/contacts_day*.mtx`` — a synthetic contact network over
three days):

1. ingest the per-day slices into one entity x entity x day tensor with
   `repro.datasets.from_slice_files` (entries stream through
   `repro.storage.StreamingTensorBuilder`, so the raw files are never
   materialized as one coordinate list),
2. flush a packed unfolding through `repro.storage.MmapUnfoldingStore`
   and show it is served from a read-only memory map,
3. factorize twice — unbudgeted, then under a deliberately tiny
   `memory_budget` that forces cache spilling — and verify the factors
   and error trace are bit-identical while resident bytes stay bounded.

Run:  python examples/streaming_ingest.py
"""

import pathlib

import numpy as np

from repro.core import DbtfConfig, dbtf
from repro.datasets import from_matrix_market, from_slice_files
from repro.distengine import ClusterConfig, SimulatedRuntime
from repro.storage import MmapUnfoldingStore, StreamingTensorBuilder, format_size
from repro.tensor import PackedUnfolding, unfold

DATA_DIR = pathlib.Path(__file__).resolve().parent / "data"
BUDGET_BYTES = 4096


def main() -> None:
    slice_paths = sorted(DATA_DIR.glob("contacts_day*.mtx"))

    # 1. One .mtx file is a matrix; a sorted list of them is a tensor.
    day0 = from_matrix_market(slice_paths[0])
    print(f"single slice {slice_paths[0].name}: {day0}")
    tensor = from_slice_files(slice_paths)
    print(f"stacked {len(slice_paths)} slices -> {tensor}\n")

    # 2. The largest driver-side object is the packed unfolding; flushing
    # it through the mmap store trades resident RAM for on-demand paging.
    builder = StreamingTensorBuilder(tensor.shape).add_batch(tensor.coords)
    with MmapUnfoldingStore() as store:
        packed = builder.packed_unfolding(0, store=store)
        in_memory = PackedUnfolding(unfold(tensor, 0))
        assert np.array_equal(np.asarray(packed.words), in_memory.words)
        print(f"mode-0 unfolding: {format_size(in_memory.nbytes)} packed, "
              f"served from {store.directory}")

        # 3. Factorize with and without a memory budget.  The budget only
        # changes *where* plan caches live (RAM vs spill files), never the
        # arithmetic, so results must match bit for bit.
        plain = dbtf(tensor, rank=2, seed=0, max_iterations=5,
                     n_partitions=2)
        runtime = SimulatedRuntime(
            ClusterConfig(n_machines=2, cores_per_machine=2,
                          memory_budget=BUDGET_BYTES)
        )
        try:
            config = DbtfConfig(rank=2, seed=0, max_iterations=5,
                                n_partitions=2,
                                cluster=runtime.config)
            budgeted = dbtf(tensor, config=config, runtime=runtime)
            budget = runtime.storage.budget
            print(f"\nunbudgeted : relative error "
                  f"{plain.relative_error:.3f}, spill 0 B")
            print(f"budget {format_size(BUDGET_BYTES)}: relative error "
                  f"{budgeted.relative_error:.3f}, "
                  f"spill {format_size(budgeted.report.spill_bytes)} "
                  f"({budget.spill_events} spills, "
                  f"{budget.load_events} loads)")
            print(f"peak tracked resident: "
                  f"{format_size(budget.peak_resident)} "
                  f"<= budget {format_size(BUDGET_BYTES)}")
            identical = (
                budgeted.errors_per_iteration == plain.errors_per_iteration
                and all(
                    np.array_equal(a.words, b.words)
                    for a, b in zip(budgeted.factors, plain.factors)
                )
            )
            print(f"bit-identical to the unbudgeted run: {identical}")
            assert identical
            assert budget.peak_resident <= BUDGET_BYTES
        finally:
            runtime.close()


if __name__ == "__main__":
    main()
