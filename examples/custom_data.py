"""Bringing your own data: importers, graph views, per-component analysis.

Real deployments start from raw records, not tensors.  This example walks
the full ingestion workflow on a synthetic "knowledge base dump":

1. parse raw subject-relation-object triples (`repro.datasets.from_triples`),
2. inspect the fiber graph and split the tensor into independently
   factorizable connected components,
3. pick a rank per component with MDL and factorize each, and
4. report discovered concepts back in terms of the original labels.

Run:  python examples/custom_data.py
"""

import numpy as np

from repro import dbtf
from repro.datasets import connected_nonzero_components, from_triples
from repro.metrics import select_rank
from repro.tensor import SparseBoolTensor


def synthesize_raw_triples(rng):
    """Two disjoint 'topics', each a few overlapping concepts, as raw rows."""
    cities = [f"city_{i}" for i in range(12)]
    countries = [f"country_{i}" for i in range(12)]
    people = [f"person_{i}" for i in range(12)]
    companies = [f"company_{i}" for i in range(12)]
    rows = []
    # Topic 1: geography (cities <-> countries).
    for city in cities[:8]:
        for country in countries[:4]:
            rows.append((city, "located-in", country))
    for city in cities[4:10]:
        for country in countries[2:6]:
            rows.append((city, "trades-with", country))
    # Topic 2: employment (people <-> companies) — disjoint entities.
    for person in people[:9]:
        for company in companies[:3]:
            rows.append((person, "works-at", company))
    for person in people[5:12]:
        for company in companies[2:7]:
            rows.append((person, "invested-in", company))
    rng.shuffle(rows)
    return rows


def main() -> None:
    rng = np.random.default_rng(5)
    rows = synthesize_raw_triples(rng)
    labelled = from_triples(rows)
    tensor = labelled.tensor
    print(f"ingested {len(rows)} raw triples -> {tensor} "
          f"({len(labelled.labels[0])} subjects, "
          f"{len(labelled.labels[2])} objects, "
          f"{len(labelled.labels[1])} relations)")

    components = connected_nonzero_components(tensor)
    print(f"fiber graph splits the data into {len(components)} independent "
          f"component(s): {[c.nnz for c in components]} nonzeros\n")

    for number, component in enumerate(components):
        selection = select_rank(component, ranks=(1, 2, 3, 4))
        result = dbtf(component, rank=selection.best_rank, seed=0,
                      n_initial_sets=4)
        print(f"component {number}: MDL rank {selection.best_rank}, "
              f"relative error {result.relative_error:.3f}")
        a_matrix, b_matrix, c_matrix = result.factors
        for concept in range(selection.best_rank):
            subjects = np.flatnonzero(a_matrix.column(concept))
            objects = np.flatnonzero(c_matrix.column(concept))
            relations = np.flatnonzero(b_matrix.column(concept))
            if subjects.size == 0:
                continue
            subject_names = [labelled.label_of(0, i) for i in subjects[:4]]
            object_names = [labelled.label_of(2, i) for i in objects[:4]]
            relation_names = [labelled.label_of(1, i) for i in relations]
            print(f"  concept: {subject_names}"
                  + (" ..." if subjects.size > 4 else "")
                  + f" --{relation_names}--> {object_names}"
                  + (" ..." if objects.size > 4 else ""))
        print()


if __name__ == "__main__":
    main()
