"""Regenerate every table and figure of the paper's evaluation, scaled.

Runs the full experiment harness — Figures 1(a)-(c), 6, 7, the Section IV-D
reconstruction-error sweeps, and Tables I/III — and writes each result to
``results/`` while printing it.  See EXPERIMENTS.md for the paper-vs-measured
comparison and the scaling notes.

Run:  python examples/reproduce_paper.py [--quick]

``--quick`` shrinks every grid so the whole script finishes in ~2 minutes;
the default takes on the order of 15-25 minutes on one core.
"""

import argparse
import pathlib
import sys
import time

from repro.datasets import ErrorTensorSpec
from repro.experiments import (
    run_additive_noise_sweep,
    run_density,
    run_destructive_noise_sweep,
    run_dimensionality,
    run_factor_density_sweep,
    run_machine_scalability,
    run_rank,
    run_rank_sweep,
    run_realworld,
    table1,
    table3,
)

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def make_emitter(quick: bool):
    """Writer for result tables; quick runs go to results/quick/ so they
    never overwrite the full-grid tables EXPERIMENTS.md references."""
    target = RESULTS_DIR / "quick" if quick else RESULTS_DIR

    def emit(table, filename: str) -> None:
        target.mkdir(parents=True, exist_ok=True)
        text = table.to_text()
        (target / filename).write_text(text + "\n")
        print(text)
        print()

    return emit


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="tiny grids; finishes in about two minutes")
    args = parser.parse_args(argv)

    started = time.perf_counter()
    emit = make_emitter(args.quick)
    if args.quick:
        exponents, timeout = (4, 5, 6), 20.0
        densities = (0.01, 0.1, 0.3)
        ranks = (10, 20)
        error_spec = ErrorTensorSpec(shape=(32, 32, 32), rank=5, factor_density=0.2)
        noise_levels = (0.0, 0.1)
        density_grid = (0.1, 0.2)
        rank_grid = (3, 5)
        datasets = ("facebook", "dblp", "nell-s")
    else:
        exponents, timeout = (4, 5, 6, 7, 8, 9), 60.0
        densities = (0.01, 0.05, 0.1, 0.2, 0.3)
        ranks = (10, 20, 30, 40, 50, 60)
        error_spec = ErrorTensorSpec()
        noise_levels = (0.0, 0.05, 0.1, 0.2, 0.3)
        density_grid = (0.05, 0.1, 0.15, 0.2)
        rank_grid = (5, 10, 15, 20)
        datasets = None  # all of Table III

    print("== Figure 1(a): dimensionality ==")
    fig1a = run_dimensionality(exponents=exponents, timeout_sec=timeout)
    emit(fig1a, "figure1a_dimensionality.txt")

    print("== Figure 1(b): density ==")
    fig1b = run_density(densities=densities, timeout_sec=timeout)
    emit(fig1b, "figure1b_density.txt")

    print("== Figure 1(c): rank ==")
    fig1c = run_rank(ranks=ranks, timeout_sec=timeout)
    emit(fig1c, "figure1c_rank.txt")

    print("== Table I: scalability matrix (derived from Figure 1) ==")
    emit(table1(dimensionality=fig1a, density=fig1b, rank=fig1c), "table1.txt")

    print("== Table III: datasets ==")
    emit(table3(), "table3.txt")

    print("== Figure 6: real-world datasets ==")
    emit(run_realworld(dataset_names=datasets, timeout_sec=min(timeout, 30.0)),
         "figure6_realworld.txt")

    print("== Figure 7: machine scalability ==")
    emit(run_machine_scalability(exponent=min(max(exponents), 7)),
         "figure7_machines.txt")

    print("== Sec. IV-D: error vs factor density ==")
    emit(run_factor_density_sweep(densities=density_grid, base=error_spec),
         "error_factor_density.txt")

    print("== Sec. IV-D: error vs rank ==")
    emit(run_rank_sweep(ranks=rank_grid, base=error_spec), "error_rank.txt")

    print("== Sec. IV-D: error vs additive noise ==")
    emit(run_additive_noise_sweep(
        levels=noise_levels,
        base=ErrorTensorSpec(shape=error_spec.shape, rank=error_spec.rank,
                             factor_density=error_spec.factor_density,
                             destructive_noise=0.0)),
        "error_additive_noise.txt")

    print("== Sec. IV-D: error vs destructive noise ==")
    emit(run_destructive_noise_sweep(
        levels=tuple(level for level in noise_levels if level <= 0.2),
        base=ErrorTensorSpec(shape=error_spec.shape, rank=error_spec.rank,
                             factor_density=error_spec.factor_density,
                             additive_noise=0.0)),
        "error_destructive_noise.txt")

    target = RESULTS_DIR / "quick" if args.quick else RESULTS_DIR
    print(f"done in {time.perf_counter() - started:.0f}s; "
          f"tables written to {target}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
